// Package samplesort implements the paper's §V-C benchmark (Fig 6): sort
// a distributed array of 64-bit integer keys with the sample sort
// algorithm of Frazer & McKellar. Keys come from the Mersenne Twister;
// splitter candidates are sampled with fine-grained global reads from the
// shared key array; redistribution uses non-blocking one-sided puts
// (async_copy) at offsets computed from an exchanged count matrix; each
// rank finishes with a local quicksort.
//
// The "upc" flavor runs the same algorithm under the Berkeley UPC
// profile; the paper reports the two curves as nearly identical, with the
// benchmark communication-bound at scale.
package samplesort

import (
	"sort"

	"upcxx/internal/core"
	"upcxx/internal/mt"
	"upcxx/internal/sim"
	"upcxx/internal/upc"
)

// Params configures a run.
type Params struct {
	Ranks       int
	KeysPerRank int
	Oversample  int    // splitter candidates per rank (paper-style oversampling)
	Flavor      string // "upc" or "upcxx"
	Machine     sim.Machine
	Virtual     bool
}

// Result reports the metrics of Fig 6.
type Result struct {
	Ranks    int
	Keys     int64
	Seconds  float64
	TBPerMin float64 // terabytes sorted per minute, the paper's y-axis
	Sorted   bool    // global order verified
	Balance  float64 // max rank load / mean load after redistribution
}

// Counters reports the run's metrics as named counters for the benchmark
// harness; "sorted" is 1 when global order verified.
func (r Result) Counters() map[string]float64 {
	sorted := 0.0
	if r.Sorted {
		sorted = 1
	}
	keysPerSec := 0.0
	if r.Seconds > 0 {
		keysPerSec = float64(r.Keys) / r.Seconds
	}
	return map[string]float64{
		"keys_sorted":  float64(r.Keys),
		"keys_per_sec": keysPerSec,
		"tb_per_min":   r.TBPerMin,
		"sorted":       sorted,
		"balance":      r.Balance,
	}
}

// Run executes the benchmark.
func Run(p Params) Result {
	if p.Oversample <= 0 {
		p.Oversample = 32
	}
	cfg := core.Config{Ranks: p.Ranks, Machine: p.Machine, SW: sim.SWUPCXX, Virtual: p.Virtual}
	if p.Flavor == "upc" {
		cfg = upc.Config(p.Ranks, p.Machine, p.Virtual)
	}
	// Segment: keys + receive buffer (sized with slack for imbalance).
	cfg.SegmentBytes = p.KeysPerRank*8*4 + (1 << 17)

	totalKeys := int64(p.KeysPerRank) * int64(p.Ranks)
	var sorted bool
	var balance float64

	st := core.Run(cfg, func(me *core.Rank) {
		P := me.Ranks()
		n := p.KeysPerRank

		// Distributed key array, block layout: rank r owns
		// [r*n, (r+1)*n). Generated locally with mt19937-64.
		keys := core.NewSharedArray[uint64](me, P*n, n)
		local := keys.LocalSlice(me)
		rng := mt.New(uint64(0x5eed + me.ID()))
		for i := range local {
			local[i] = rng.Uint64()
		}
		me.Barrier()

		// Phase 1 — sampling (paper listing): the key space is sampled
		// with fine-grained global reads ("candidates[i] = keys[s];
		// global accesses"). Each rank samples its share in parallel;
		// the candidates are gathered, sorted once, and the splitters
		// broadcast.
		myCand := make([]uint64, p.Oversample)
		srng := mt.New(uint64(0xabcde0) + uint64(me.ID()))
		for i := range myCand {
			s := srng.Uint64n(uint64(P * n))
			myCand[i] = keys.Get(me, int(s)) // global accesses
		}
		allCand := core.TeamAllGather(me.World(), myCand)
		me.Barrier()
		var splitters []uint64
		if me.ID() == 0 {
			cand := make([]uint64, 0, p.Oversample*P)
			for _, c := range allCand {
				cand = append(cand, c...)
			}
			sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
			me.Work(float64(len(cand)) * 20) // sort cost
			splitters = make([]uint64, P-1)
			for i := 1; i < P; i++ {
				splitters[i-1] = cand[i*p.Oversample]
			}
		}
		splitters = core.TeamBroadcast(me.World(), splitters, 0)
		me.Barrier()

		// Phase 2 — partition local keys by splitter.
		quicksort(local)
		me.Work(float64(n) * 22) // n log n local sort cost
		bounds := make([]int, P+1)
		bounds[P] = n
		for d := 1; d < P; d++ {
			bounds[d] = sort.Search(n, func(i int) bool { return local[i] >= splitters[d-1] })
		}

		// Phase 3 — exchange counts and compute landing offsets the way
		// alltoallv implementations do: each destination scans its own
		// column of the count matrix (O(P) per rank), then a transpose
		// exchange hands each sender its per-destination offsets.
		myCounts := make([]int32, P)
		for d := 0; d < P; d++ {
			myCounts[d] = int32(bounds[d+1] - bounds[d])
		}
		allCounts := core.TeamAllGather(me.World(), myCounts) // [src][dst]
		me.Barrier()

		recvTotal := 0
		colOffs := make([]int32, P) // offset of each source within my buffer
		for r := 0; r < P; r++ {
			colOffs[r] = int32(recvTotal)
			recvTotal += int(allCounts[r][me.ID()])
		}
		me.Work(float64(P))
		allOffs := core.TeamAllGather(me.World(), colOffs) // [dst][src]
		recvBuf := core.Allocate[uint64](me, me.ID(), recvTotal+1)
		bufs := core.TeamAllGather(me.World(), recvBuf)
		me.Barrier()

		// Phase 4 — redistribution with non-blocking one-sided puts at
		// the exchanged offsets, then a single fence (paper:
		// "non-blocking one-sided communication to redistribute the
		// keys" synchronized by one async_copy_fence, §V-E).
		for d := 0; d < P; d++ {
			if myCounts[d] == 0 {
				continue
			}
			off := int(allOffs[d][me.ID()])
			chunk := local[bounds[d]:bounds[d+1]]
			core.WriteSliceAsync(me, bufs[d].Add(off), chunk, nil)
		}
		core.AsyncCopyFence(me)
		me.Barrier()

		// Phase 5 — final local sort of received keys.
		mine := core.LocalSlice(me, recvBuf, recvTotal)
		quicksort(mine)
		me.Work(float64(recvTotal) * 22)
		me.Barrier()

		// Verification: local sortedness plus global boundary order and
		// conservation of key count.
		ok := isSorted(mine)
		var hi uint64
		if recvTotal > 0 {
			hi = mine[recvTotal-1]
		}
		his := core.TeamAllGather(me.World(), hi)
		lo := uint64(0)
		if recvTotal > 0 {
			lo = mine[0]
		}
		los := core.TeamAllGather(me.World(), lo)
		counts := core.TeamAllGather(me.World(), int64(recvTotal))
		me.Barrier()
		if me.ID() == 0 {
			var sum int64
			for _, c := range counts {
				sum += c
			}
			globalOK := sum == int64(P*n)
			for r := 0; r+1 < P; r++ {
				if counts[r] > 0 && counts[r+1] > 0 && his[r] > los[r+1] {
					globalOK = false
				}
			}
			sorted = ok && globalOK
			maxC := int64(0)
			for _, c := range counts {
				if c > maxC {
					maxC = c
				}
			}
			balance = float64(maxC) * float64(P) / float64(sum)
		}
		me.Barrier()
	})

	secs := st.Seconds(p.Virtual)
	res := Result{Ranks: p.Ranks, Keys: totalKeys, Seconds: secs, Sorted: sorted, Balance: balance}
	if secs > 0 {
		bytes := float64(totalKeys) * 8
		res.TBPerMin = bytes / 1e12 / (secs / 60)
	}
	return res
}

func isSorted(s []uint64) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// quicksort is the benchmark's own local sort (the paper's "local quick
// sort"): median-of-three quicksort with insertion sort below a cutoff.
func quicksort(s []uint64) {
	for len(s) > 12 {
		// Median of three.
		m := len(s) / 2
		hi := len(s) - 1
		if s[0] > s[m] {
			s[0], s[m] = s[m], s[0]
		}
		if s[0] > s[hi] {
			s[0], s[hi] = s[hi], s[0]
		}
		if s[m] > s[hi] {
			s[m], s[hi] = s[hi], s[m]
		}
		pivot := s[m]
		i, j := 0, hi
		for i <= j {
			for s[i] < pivot {
				i++
			}
			for s[j] > pivot {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if j < len(s)-i {
			quicksort(s[:j+1])
			s = s[i:]
		} else {
			quicksort(s[i:])
			s = s[:j+1]
		}
	}
	// Insertion sort tail.
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
