package harness

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"upcxx/internal/sim"
)

// fixture is a small hand-built result used by the renderer and
// round-trip tests so they stay deterministic and fast.
func fixture() Result {
	return Result{
		ID: "fig4", PaperRef: "§V-A Fig 4",
		Title:  "Fig 4 — Random Access latency per update, BG/Q (usec)",
		Metric: "latency_per_update", Unit: "usec",
		Quick:   true,
		Profile: sim.NewProfile(sim.Vesta, sim.SWUPC, sim.SWUPCXX),
		Series: []Series{
			{Name: "UPC", System: "upc", Points: []Point{
				{Ranks: 1, Value: 0.5, VirtualSeconds: 1e-4, WallSeconds: 2e-4,
					Counters: map[string]float64{"updates": 200, "gups": 0.002}},
				{Ranks: 2, Value: 2.0, VirtualSeconds: 4e-4, WallSeconds: 3e-4},
			}},
			{Name: "UPC++", System: "upcxx", Points: []Point{
				{Ranks: 1, Value: 1.0, VirtualSeconds: 2e-4, WallSeconds: 2e-4},
				{Ranks: 2, Value: 3.0, VirtualSeconds: 6e-4, WallSeconds: 3e-4},
			}},
		},
		SweepLabel: "cores", Format: "%.2f", Ratio: true,
	}
}

func TestLookup(t *testing.T) {
	cases := []struct {
		name string
		want string
		ok   bool
	}{
		{"fig4", "fig4", true},
		{"FIG5", "fig5", true},
		{" fig8 ", "fig8", true},
		{"tableiv", "tableiv", true},
		{"tab4", "tableiv", true},
		{"table4", "tableiv", true},
		{"all", "", false}, // pseudo-name, expanded by callers
		{"fig9", "", false},
	}
	for _, c := range cases {
		e, ok := Lookup(c.name)
		if ok != c.ok || (ok && e.ID != c.want) {
			t.Errorf("Lookup(%q) = %q, %v; want %q, %v", c.name, e.ID, ok, c.want, c.ok)
		}
	}
}

func TestRegistryCoversPaper(t *testing.T) {
	want := []string{"fig4", "tableiv", "fig5", "fig6", "fig7", "fig8", "dhtbench", "collbench", "rpcbench", "futbench", "loadcurve", "gatebench"}
	var got []string
	for _, e := range Experiments() {
		got = append(got, e.ID)
		if e.Run == nil {
			t.Errorf("experiment %q has no run function", e.ID)
		}
		if e.PaperRef == "" {
			t.Errorf("experiment %q has no paper reference", e.ID)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("registry order = %v; want %v", got, want)
	}
	if names := Names(); names[len(names)-1] != "all" {
		t.Errorf("Names() = %v; want trailing \"all\"", names)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	orig := fixture()
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, orig)
	}
	// The profile's topology must survive as its readable name, and an
	// unknown name must be rejected rather than coerced to flat.
	if !strings.Contains(string(b), `"topology": "torus5d"`) &&
		!strings.Contains(string(b), `"topology":"torus5d"`) {
		t.Errorf("topology not serialized by name: %s", b)
	}
	var topo sim.Topology
	if err := json.Unmarshal([]byte(`"fat_tree"`), &topo); err == nil {
		t.Error("unknown topology name accepted")
	}
}

func TestEmptyResultTable(t *testing.T) {
	r := Result{Title: "empty", SweepLabel: "cores"}
	if tab := r.Table(); len(tab.Rows) != 0 || len(tab.Headers) != 1 {
		t.Errorf("empty result table = %+v", tab)
	}
}

func TestReportJSONRenderer(t *testing.T) {
	rep := NewReport(Options{Quick: true}, []Result{fixture()})
	var sb strings.Builder
	if err := (JSONRenderer{Indent: true}).Render(&sb, rep); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("renderer emitted invalid JSON: %v", err)
	}
	if back.Schema != Schema {
		t.Errorf("schema = %q; want %q", back.Schema, Schema)
	}
	if back.GoVersion == "" || back.GOOS == "" || back.GOARCH == "" {
		t.Errorf("missing host metadata: %+v", back)
	}
	if len(back.Results) != 1 || !reflect.DeepEqual(back.Results[0], fixture()) {
		t.Errorf("results did not survive the renderer")
	}
}

const goldenText = `
== Fig 4 — Random Access latency per update, BG/Q (usec) ==
cores  UPC   UPC++  UPC++/UPC
-----  ----  -----  ---------
1      0.50  1.00   2.00
2      2.00  3.00   1.50
`

const goldenMarkdown = `
**Fig 4 — Random Access latency per update, BG/Q (usec)**

| cores | UPC | UPC++ | UPC++/UPC |
| --- | --- | --- | --- |
| 1 | 0.50 | 1.00 | 2.00 |
| 2 | 2.00 | 3.00 | 1.50 |
`

func TestRendererGolden(t *testing.T) {
	rep := Report{Results: []Result{fixture()}}
	cases := []struct {
		name   string
		r      Renderer
		golden string
	}{
		{"text", TextRenderer{}, goldenText},
		{"markdown", MarkdownRenderer{}, goldenMarkdown},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var sb strings.Builder
			if err := c.r.Render(&sb, rep); err != nil {
				t.Fatal(err)
			}
			if sb.String() != c.golden {
				t.Errorf("golden mismatch:\n got %q\nwant %q", sb.String(), c.golden)
			}
		})
	}
}

func TestRendererFor(t *testing.T) {
	for name, want := range map[string]Renderer{
		"":         TextRenderer{},
		"text":     TextRenderer{},
		"markdown": MarkdownRenderer{},
		"md":       MarkdownRenderer{},
		"json":     JSONRenderer{Indent: true},
	} {
		got, err := RendererFor(name)
		if err != nil || got != want {
			t.Errorf("RendererFor(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := RendererFor("csv"); err == nil {
		t.Error("RendererFor(\"csv\") succeeded; want error")
	}
}

// TestRunTableIVQuick runs the smallest real experiment end to end and
// checks the typed result carries the sweep, counters and profile the
// artifact schema promises.
func TestRunTableIVQuick(t *testing.T) {
	e, ok := Lookup("tableiv")
	if !ok {
		t.Fatal("tableiv not registered")
	}
	r := e.Run(Options{Quick: true})
	if r.ID != "tableiv" || r.Unit != "GUPS" {
		t.Fatalf("unexpected identity: %+v", r)
	}
	if got, want := r.Ranks(), []int{16, 128}; !reflect.DeepEqual(got, want) {
		t.Fatalf("quick sweep = %v; want %v", got, want)
	}
	if r.Profile.Machine.Name != "vesta" || len(r.Profile.Software) != 2 {
		t.Fatalf("profile not recorded: %+v", r.Profile)
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.Value <= 0 || p.VirtualSeconds <= 0 || p.WallSeconds <= 0 {
				t.Errorf("series %q point %+v missing measurements", s.Name, p)
			}
			if p.Counters["updates_per_sec"] <= 0 {
				t.Errorf("series %q point at %d ranks missing updates_per_sec counter", s.Name, p.Ranks)
			}
		}
	}
}
