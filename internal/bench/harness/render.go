package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Renderer turns a Report into one output format. Renderers are pluggable
// so cmd/upcxx-bench (and future tooling) can emit aligned text for
// humans, markdown for EXPERIMENTS-style docs, and JSON for the
// BENCH_*.json perf-trajectory artifacts — all from the same typed
// results.
type Renderer interface {
	Render(w io.Writer, rep Report) error
}

// RendererFor maps a format name ("text", "markdown", "json") to its
// renderer.
func RendererFor(format string) (Renderer, error) {
	switch format {
	case "", "text":
		return TextRenderer{}, nil
	case "markdown", "md":
		return MarkdownRenderer{}, nil
	case "json":
		return JSONRenderer{Indent: true}, nil
	default:
		return nil, fmt.Errorf("unknown output format %q (want text, markdown or json)", format)
	}
}

// Table is the row/column intermediate the text and markdown renderers
// share; Result.Table derives one from the typed series.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Table lowers the typed result to the paper's table shape: one row per
// rank count, one column per series, plus a derived last/first ratio
// column when Ratio is set (e.g. "UPC++/UPC").
func (r Result) Table() *Table {
	t := &Table{Title: r.Title}
	label := r.SweepLabel
	if label == "" {
		label = "ranks"
	}
	t.Headers = append(t.Headers, label)
	for _, s := range r.Series {
		t.Headers = append(t.Headers, s.Name)
	}
	if len(r.Series) == 0 {
		return t
	}
	first, last := r.Series[0], r.Series[len(r.Series)-1]
	ratio := r.Ratio && len(r.Series) >= 2
	if ratio {
		t.Headers = append(t.Headers, last.Name+"/"+first.Name)
	}
	for _, ranks := range r.Ranks() {
		row := []string{fmt.Sprintf("%d", ranks)}
		for _, s := range r.Series {
			if p, ok := s.point(ranks); ok {
				row = append(row, fv(r.Format, p.Value))
			} else {
				row = append(row, "-")
			}
		}
		if ratio {
			a, aok := first.point(ranks)
			b, bok := last.point(ranks)
			if aok && bok && a.Value != 0 {
				row = append(row, fmt.Sprintf("%.2f", b.Value/a.Value))
			} else {
				row = append(row, "-")
			}
		}
		t.Add(row...)
	}
	return t
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Headers)
	seps := make([]string, len(t.Headers))
	for i, wd := range widths {
		seps[i] = strings.Repeat("-", wd)
	}
	line(seps)
	for _, r := range t.Rows {
		line(r)
	}
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "\n**%s**\n\n", t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
}

// TextRenderer emits one aligned text table per result.
type TextRenderer struct{}

// Render implements Renderer.
func (TextRenderer) Render(w io.Writer, rep Report) error {
	for _, r := range rep.Results {
		r.Table().Fprint(w)
	}
	return nil
}

// MarkdownRenderer emits one markdown table per result.
type MarkdownRenderer struct{}

// Render implements Renderer.
func (MarkdownRenderer) Render(w io.Writer, rep Report) error {
	for _, r := range rep.Results {
		r.Table().Markdown(w)
	}
	return nil
}

// JSONRenderer emits the full Report as one JSON document — the
// BENCH_*.json artifact format.
type JSONRenderer struct {
	Indent bool
}

// Render implements Renderer.
func (jr JSONRenderer) Render(w io.Writer, rep Report) error {
	enc := json.NewEncoder(w)
	if jr.Indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(rep)
}
