package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"text/tabwriter"
)

// Baseline regression checking: `upcxx-bench -diff BENCH_upcxx.json`
// regenerates the sweep and compares every headline metric point
// against the committed artifact, point by point, within a relative
// tolerance. Virtual-time metrics are model-driven but not perfectly
// deterministic — the modeled makespan of work-stealing and
// barrier-racing benchmarks depends on real goroutine interleavings —
// so the default tolerance absorbs scheduler noise while still
// catching step-change regressions.

// DefaultTolerance is the relative drift allowed per point.
const DefaultTolerance = 0.25

// DiffEntry is the comparison of one (experiment, series, ranks) point.
type DiffEntry struct {
	Experiment string  `json:"experiment"`
	Series     string  `json:"series"`
	Ranks      int     `json:"ranks"`
	Baseline   float64 `json:"baseline"`
	Current    float64 `json:"current"`
	RelDrift   float64 `json:"rel_drift"`
	// Tol is the tolerance this entry was judged against: the larger
	// of the global -tol and the baseline experiment's DiffTolerance
	// (wall-clock experiments widen it).
	Tol float64 `json:"tol"`
	// Missing marks a baseline point absent from the current report
	// (an experiment or sweep point silently disappeared).
	Missing bool `json:"missing,omitempty"`
	OK      bool `json:"ok"`
}

// relDrift returns |a-b| / max(|a|, |b|), 0 when both are 0.
func relDrift(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// DiffReports compares current against baseline: every metric point of
// the baseline must exist in current and agree within tol (relative).
// Points present only in current (new experiments, larger sweeps) are
// ignored — growth is not a regression. Entries come back in baseline
// order, failures included.
func DiffReports(baseline, current Report, tol float64) []DiffEntry {
	cur := map[string]float64{}
	key := func(exp, series string, ranks int) string {
		return fmt.Sprintf("%s\x00%s\x00%d", exp, series, ranks)
	}
	// Per-experiment tolerances from BOTH reports: the widest wins, so
	// a DiffTolerance change in the experiment code takes effect
	// immediately instead of waiting for a baseline regeneration.
	curTol := map[string]float64{}
	for _, r := range current.Results {
		curTol[r.ID] = r.DiffTolerance
		for _, s := range r.Series {
			for _, p := range s.Points {
				cur[key(r.ID, s.Name, p.Ranks)] = p.Value
			}
		}
	}
	var out []DiffEntry
	for _, r := range baseline.Results {
		rtol := tol
		if r.DiffTolerance > rtol {
			rtol = r.DiffTolerance
		}
		if t := curTol[r.ID]; t > rtol {
			rtol = t
		}
		for _, s := range r.Series {
			for _, p := range s.Points {
				e := DiffEntry{
					Experiment: r.ID,
					Series:     s.Name,
					Ranks:      p.Ranks,
					Baseline:   p.Value,
					Tol:        rtol,
				}
				v, ok := cur[key(r.ID, s.Name, p.Ranks)]
				if !ok {
					e.Missing = true
				} else {
					e.Current = v
					e.RelDrift = relDrift(p.Value, v)
					e.OK = e.RelDrift <= rtol
				}
				out = append(out, e)
			}
		}
	}
	return out
}

// Failures filters entries that violate the tolerance (or vanished).
func Failures(entries []DiffEntry) []DiffEntry {
	var bad []DiffEntry
	for _, e := range entries {
		if !e.OK {
			bad = append(bad, e)
		}
	}
	return bad
}

// LoadReport reads a JSON report artifact and validates its schema.
func LoadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("harness: parsing %s: %w", path, err)
	}
	if r.Schema != Schema {
		return Report{}, fmt.Errorf("harness: %s has schema %q, want %q", path, r.Schema, Schema)
	}
	return r, nil
}

// RenderDiff writes the comparison as an aligned table, worst drift
// first within each experiment, and returns how many entries failed.
// Each entry carries the tolerance it was judged against (DiffReports
// sets it), so no global tolerance is needed here.
func RenderDiff(w io.Writer, entries []DiffEntry) int {
	sorted := make([]DiffEntry, len(entries))
	copy(sorted, entries)
	// Key on the experiment's first appearance so the comparator is a
	// strict weak ordering (an "equal within, ordered across" predicate
	// breaks sort's contract and can interleave experiments).
	order := make(map[string]int)
	for _, e := range entries {
		if _, seen := order[e.Experiment]; !seen {
			order[e.Experiment] = len(order)
		}
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		if oi, oj := order[sorted[i].Experiment], order[sorted[j].Experiment]; oi != oj {
			return oi < oj
		}
		return sorted[i].RelDrift > sorted[j].RelDrift
	})
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "experiment\tseries\tranks\tbaseline\tcurrent\tdrift\tstatus\n")
	failures := 0
	for _, e := range sorted {
		status := "ok"
		switch {
		case e.Missing:
			status = "MISSING"
			failures++
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.4g\t-\t-\t%s\n",
				e.Experiment, e.Series, e.Ranks, e.Baseline, status)
			continue
		case !e.OK:
			status = fmt.Sprintf("FAIL (> %.0f%%)", e.Tol*100)
			failures++
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.4g\t%.4g\t%.1f%%\t%s\n",
			e.Experiment, e.Series, e.Ranks, e.Baseline, e.Current, e.RelDrift*100, status)
	}
	tw.Flush()
	return failures
}
