package harness

import (
	"bytes"
	"strings"
	"testing"
)

func report(points map[string]float64) Report {
	// key: "exp/series/ranks" with ranks fixed at 8 for brevity.
	byExp := map[string]map[string][]Point{}
	for k, v := range points {
		parts := strings.Split(k, "/")
		exp, series := parts[0], parts[1]
		if byExp[exp] == nil {
			byExp[exp] = map[string][]Point{}
		}
		byExp[exp][series] = append(byExp[exp][series], Point{Ranks: 8, Value: v})
	}
	var r Report
	r.Schema = Schema
	for exp, seriesMap := range byExp {
		res := Result{ID: exp}
		for name, pts := range seriesMap {
			res.Series = append(res.Series, Series{Name: name, Points: pts})
		}
		r.Results = append(r.Results, res)
	}
	return r
}

func TestDiffReportsWithinTolerance(t *testing.T) {
	base := report(map[string]float64{"fig4/UPC": 100, "fig4/UPC++": 200})
	cur := report(map[string]float64{"fig4/UPC": 110, "fig4/UPC++": 190})
	entries := DiffReports(base, cur, 0.25)
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	if n := len(Failures(entries)); n != 0 {
		t.Fatalf("%d failures within tolerance: %+v", n, Failures(entries))
	}
}

func TestDiffReportsRegression(t *testing.T) {
	base := report(map[string]float64{"fig4/UPC": 100})
	cur := report(map[string]float64{"fig4/UPC": 160})
	entries := DiffReports(base, cur, 0.25)
	fails := Failures(entries)
	if len(fails) != 1 {
		t.Fatalf("60%% drift not flagged at 25%% tolerance: %+v", entries)
	}
	if got := fails[0].RelDrift; got < 0.37 || got > 0.38 {
		t.Errorf("RelDrift = %v, want 0.375", got)
	}
}

func TestDiffReportsMissingPoint(t *testing.T) {
	base := report(map[string]float64{"fig4/UPC": 100, "fig5/UPC++": 7})
	cur := report(map[string]float64{"fig4/UPC": 100})
	fails := Failures(DiffReports(base, cur, 0.25))
	if len(fails) != 1 || !fails[0].Missing {
		t.Fatalf("vanished baseline point not flagged: %+v", fails)
	}
}

func TestDiffReportsNewPointsIgnored(t *testing.T) {
	base := report(map[string]float64{"fig4/UPC": 100})
	cur := report(map[string]float64{"fig4/UPC": 100, "fig9/new": 1})
	if fails := Failures(DiffReports(base, cur, 0.25)); len(fails) != 0 {
		t.Fatalf("growth flagged as regression: %+v", fails)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	base := report(map[string]float64{"fig4/UPC": 0})
	cur := report(map[string]float64{"fig4/UPC": 0})
	if fails := Failures(DiffReports(base, cur, 0.25)); len(fails) != 0 {
		t.Fatalf("0 vs 0 flagged: %+v", fails)
	}
}

func TestRenderDiffCountsFailures(t *testing.T) {
	base := report(map[string]float64{"fig4/UPC": 100, "fig4/UPC++": 10})
	cur := report(map[string]float64{"fig4/UPC": 500, "fig4/UPC++": 10})
	entries := DiffReports(base, cur, 0.25)
	var buf bytes.Buffer
	if got := RenderDiff(&buf, entries); got != 1 {
		t.Fatalf("RenderDiff returned %d failures, want 1", got)
	}
	out := buf.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "ok") {
		t.Fatalf("table missing statuses:\n%s", out)
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	if _, err := LoadReport("no-such-file.json"); err == nil {
		t.Error("LoadReport accepted a missing file")
	}
	// The committed baseline must load and carry the expected schema.
	r, err := LoadReport("../../../BENCH_upcxx.json")
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	if len(r.Results) == 0 {
		t.Fatal("committed baseline has no results")
	}
}
