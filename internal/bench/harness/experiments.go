package harness

import (
	"upcxx/internal/bench/gups"
	"upcxx/internal/bench/lulesh"
	"upcxx/internal/bench/raytrace"
	"upcxx/internal/bench/samplesort"
	"upcxx/internal/bench/stencil"
	"upcxx/internal/sim"
)

// Quick selects reduced sweeps (fast laptop runs); the full sweeps reach
// the paper's largest scales (8192, 6144, 12288 and 32768 ranks).
type Options struct {
	Quick bool
}

func caps(o Options, quickMax int) func(int) bool {
	return func(p int) bool { return !o.Quick || p <= quickMax }
}

// Fig4 reproduces "Random Access latency per update on IBM BlueGene/Q":
// microseconds per update vs core count, UPC and UPC++ series.
func Fig4(o Options) *Table {
	t := &Table{
		Title:   "Fig 4 — Random Access latency per update, BG/Q (usec)",
		Headers: []string{"cores", "UPC", "UPC++", "UPC++/UPC"},
	}
	keep := caps(o, 256)
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192} {
		if !keep(p) {
			continue
		}
		upd := updatesFor(p, o)
		u := gups.Run(gups.Params{Ranks: p, LogTableSize: logTableFor(p),
			UpdatesPerRank: upd, Flavor: "upc", Machine: sim.Vesta, Virtual: true})
		x := gups.Run(gups.Params{Ranks: p, LogTableSize: logTableFor(p),
			UpdatesPerRank: upd, Flavor: "upcxx", Machine: sim.Vesta, Virtual: true})
		t.Add(d(p), f2(u.UsecPerUpdate), f2(x.UsecPerUpdate), f2(x.UsecPerUpdate/u.UsecPerUpdate))
	}
	return t
}

// TableIV reproduces "Random Access giga-updates-per-second".
func TableIV(o Options) *Table {
	t := &Table{
		Title:   "Table IV — Random Access GUPS",
		Headers: []string{"THREADS", "UPC", "UPC++"},
	}
	cores := []int{16, 128, 1024, 8192}
	if o.Quick {
		cores = []int{16, 128}
	}
	for _, p := range cores {
		upd := updatesFor(p, o)
		u := gups.Run(gups.Params{Ranks: p, LogTableSize: logTableFor(p),
			UpdatesPerRank: upd, Flavor: "upc", Machine: sim.Vesta, Virtual: true})
		x := gups.Run(gups.Params{Ranks: p, LogTableSize: logTableFor(p),
			UpdatesPerRank: upd, Flavor: "upcxx", Machine: sim.Vesta, Virtual: true})
		t.Add(d(p), f4(u.GUPS), f4(x.GUPS))
	}
	return t
}

func updatesFor(p int, o Options) int {
	if o.Quick {
		return 200
	}
	switch {
	case p <= 64:
		return 2000
	case p <= 1024:
		return 800
	default:
		return 300
	}
}

func logTableFor(p int) int {
	// Keep the table comfortably larger than the rank count while
	// bounded in memory.
	l := 16
	for (1 << l) < 8*p {
		l++
	}
	return l
}

// Fig5 reproduces "Stencil weak scaling performance (GFLOPS) on Cray
// XC30": Titanium vs UPC++ over 24..6144 cores.
func Fig5(o Options) *Table {
	t := &Table{
		Title:   "Fig 5 — Stencil weak scaling, Cray XC30 (GFLOPS)",
		Headers: []string{"cores", "Titanium", "UPC++", "UPC++/Ti"},
	}
	keep := caps(o, 192)
	box, iters := 16, 4
	if o.Quick {
		box = 12
	}
	for _, p := range []int{24, 48, 96, 192, 384, 768, 1536, 3072, 6144} {
		if !keep(p) {
			continue
		}
		ti := stencil.Run(stencil.Params{Ranks: p, Box: box, Iters: iters,
			Flavor: "titanium", Machine: sim.Edison, Virtual: true})
		ux := stencil.Run(stencil.Params{Ranks: p, Box: box, Iters: iters,
			Flavor: "upcxx", Machine: sim.Edison, Virtual: true})
		t.Add(d(p), f1(ti.GFLOPS), f1(ux.GFLOPS), f2(ux.GFLOPS/ti.GFLOPS))
	}
	return t
}

// Fig6 reproduces "Sample Sort weak scaling performance (TB/min) on Cray
// XC30": UPC vs UPC++ over 1..12288 cores.
func Fig6(o Options) *Table {
	t := &Table{
		Title:   "Fig 6 — Sample Sort weak scaling, Cray XC30 (TB/min)",
		Headers: []string{"cores", "UPC", "UPC++", "UPC++/UPC"},
	}
	keep := caps(o, 192)
	keys := 65536
	if o.Quick {
		keys = 8192
	}
	for _, p := range []int{1, 2, 4, 8, 12, 24, 48, 96, 192, 384, 768, 1536, 3072, 6144, 12288} {
		if !keep(p) {
			continue
		}
		kp := keys
		if p >= 3072 {
			kp = keys / 8 // bound total memory at the largest sweeps
		}
		u := samplesort.Run(samplesort.Params{Ranks: p, KeysPerRank: kp,
			Flavor: "upc", Machine: sim.Edison, Virtual: true})
		x := samplesort.Run(samplesort.Params{Ranks: p, KeysPerRank: kp,
			Flavor: "upcxx", Machine: sim.Edison, Virtual: true})
		t.Add(d(p), g3(u.TBPerMin), g3(x.TBPerMin), f2(x.TBPerMin/u.TBPerMin))
	}
	return t
}

// Fig7 reproduces "Embree ray tracing strong scaling performance on Cray
// XC30": speedup vs core count for the UPC++ renderer (one rank per
// 24-core node, node-local workers model the OpenMP threads).
func Fig7(o Options) *Table {
	t := &Table{
		Title:   "Fig 7 — Ray tracing strong scaling, Cray XC30 (speedup)",
		Headers: []string{"cores", "speedup", "ideal"},
	}
	keep := caps(o, 192)
	w, h, spp := 192, 128, 16
	if o.Quick {
		w, h, spp = 96, 64, 4
	}
	var t24 float64
	for _, cores := range []int{24, 48, 96, 192, 384, 768, 1536, 3072, 6144} {
		if !keep(cores) {
			continue
		}
		r := raytrace.Run(raytrace.Params{
			Ranks: cores / 24, Width: w, Height: h, SPP: spp, Tile: 4,
			Machine: sim.Edison, Virtual: true,
			// Model Embree-scale scene complexity (BVH over thousands
			// of primitives): the small verification scene is traced
			// for real, its bounce count charged at production weight.
			FlopsPerBounce: 1e6,
		})
		if t24 == 0 {
			t24 = r.Seconds * 24
		}
		t.Add(d(cores), f1(t24/r.Seconds), d(cores))
	}
	return t
}

// Fig8 reproduces "LULESH weak scaling performance on Cray XC30": FOM
// (zones/s) vs core count, MPI vs UPC++, perfect-cube process counts.
func Fig8(o Options) *Table {
	t := &Table{
		Title:   "Fig 8 — LULESH weak scaling, Cray XC30 (FOM z/s)",
		Headers: []string{"cores", "MPI", "UPC++", "UPC++/MPI"},
	}
	sides := []int{4, 6, 8, 10, 16, 20, 24, 32} // 64..32768 ranks
	if o.Quick {
		sides = []int{2, 3, 4}
	}
	e, iters := 6, 4
	for _, s := range sides {
		// ComputeScale models production LULESH zone cost over the
		// proxy's smaller per-zone arithmetic (see lulesh.Params).
		m := lulesh.Run(lulesh.Params{Side: s, E: e, Iters: iters,
			Flavor: "mpi", Machine: sim.Edison, Virtual: true, ComputeScale: 16})
		x := lulesh.Run(lulesh.Params{Side: s, E: e, Iters: iters,
			Flavor: "upcxx", Machine: sim.Edison, Virtual: true, ComputeScale: 16})
		t.Add(d(s*s*s), g3(m.FOM), g3(x.FOM), f2(x.FOM/m.FOM))
	}
	return t
}

// All returns every experiment in paper order.
func All(o Options) []*Table {
	return []*Table{Fig4(o), TableIV(o), Fig5(o), Fig6(o), Fig7(o), Fig8(o)}
}
