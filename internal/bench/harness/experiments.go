package harness

import (
	"time"

	"upcxx/internal/bench/collbench"
	"upcxx/internal/bench/dhtbench"
	"upcxx/internal/bench/futbench"
	"upcxx/internal/bench/gatebench"
	"upcxx/internal/bench/gups"
	"upcxx/internal/bench/loadcurve"
	"upcxx/internal/bench/lulesh"
	"upcxx/internal/bench/raytrace"
	"upcxx/internal/bench/rpcbench"
	"upcxx/internal/bench/samplesort"
	"upcxx/internal/bench/stencil"
	"upcxx/internal/sim"
)

func caps(o Options, quickMax int) func(int) bool {
	return func(p int) bool { return !o.Quick || p <= quickMax }
}

// gupsPoint runs one Random Access configuration and converts it to a
// harness Point carrying the given headline value selector.
func gupsPoint(p int, o Options, flavor string, value func(gups.Result) float64) Point {
	r, wall := timed(func() gups.Result {
		return gups.Run(gups.Params{Ranks: p, LogTableSize: logTableFor(p),
			UpdatesPerRank: updatesFor(p, o), Flavor: flavor,
			Machine: sim.Vesta, Virtual: true})
	})
	return Point{Ranks: p, Value: value(r), VirtualSeconds: r.Seconds,
		WallSeconds: wall, Counters: r.Counters()}
}

// Fig4 reproduces "Random Access latency per update on IBM BlueGene/Q":
// microseconds per update vs core count, UPC and UPC++ series.
func Fig4(o Options) Result {
	res := Result{
		ID: "fig4", PaperRef: "§V-A Fig 4",
		Title:  "Fig 4 — Random Access latency per update, BG/Q (usec)",
		Metric: "latency_per_update", Unit: "usec",
		Quick:   o.Quick,
		Profile: sim.NewProfile(sim.Vesta, sim.SWUPC, sim.SWUPCXX),
		Series: []Series{
			{Name: "UPC", System: "upc"},
			{Name: "UPC++", System: "upcxx"},
		},
		SweepLabel: "cores", Format: "%.2f", Ratio: true,
	}
	keep := caps(o, 256)
	lat := func(r gups.Result) float64 { return r.UsecPerUpdate }
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192} {
		if !keep(p) {
			continue
		}
		res.Series[0].Points = append(res.Series[0].Points, gupsPoint(p, o, "upc", lat))
		res.Series[1].Points = append(res.Series[1].Points, gupsPoint(p, o, "upcxx", lat))
	}
	return res
}

// TableIV reproduces "Random Access giga-updates-per-second".
func TableIV(o Options) Result {
	res := Result{
		ID: "tableiv", PaperRef: "§V-A Table IV",
		Title:  "Table IV — Random Access GUPS",
		Metric: "throughput", Unit: "GUPS",
		Quick:   o.Quick,
		Profile: sim.NewProfile(sim.Vesta, sim.SWUPC, sim.SWUPCXX),
		Series: []Series{
			{Name: "UPC", System: "upc"},
			{Name: "UPC++", System: "upcxx"},
		},
		SweepLabel: "THREADS", Format: "%.4f",
	}
	cores := []int{16, 128, 1024, 8192}
	if o.Quick {
		cores = []int{16, 128}
	}
	g := func(r gups.Result) float64 { return r.GUPS }
	for _, p := range cores {
		res.Series[0].Points = append(res.Series[0].Points, gupsPoint(p, o, "upc", g))
		res.Series[1].Points = append(res.Series[1].Points, gupsPoint(p, o, "upcxx", g))
	}
	return res
}

func updatesFor(p int, o Options) int {
	if o.Quick {
		return 200
	}
	switch {
	case p <= 64:
		return 2000
	case p <= 1024:
		return 800
	default:
		return 300
	}
}

func logTableFor(p int) int {
	// Keep the table comfortably larger than the rank count while
	// bounded in memory.
	l := 16
	for (1 << l) < 8*p {
		l++
	}
	return l
}

// DHTBench measures the message-aggregation subsystem on the real TCP
// wire conduit (not the virtual-time model): distributed hash-table
// insert throughput with aggregation on vs off, plus the wire-frame
// cost per insert from the conduit's per-handler counters. The frame
// counts are deterministic for a given workload; the throughput is
// wall-clock, so the experiment carries a wide DiffTolerance for the
// regression gate.
func DHTBench(o Options) Result {
	res := Result{
		ID: "dhtbench", PaperRef: "§IV (beyond the paper)",
		Title:  "DHT inserts over the wire conduit, aggregation on vs off",
		Metric: "throughput", Unit: "inserts/s",
		Quick:   o.Quick,
		Profile: sim.NewProfile(sim.Local, sim.SWUPCXX),
		Series: []Series{
			{Name: "agg-on", System: "upcxx"},
			{Name: "agg-off", System: "upcxx"},
		},
		SweepLabel: "ranks", Format: "%.3g", Ratio: true,
		// Wall-clock throughput on shared CI runners drifts far more
		// than the virtual-time sweeps; gate only order-of-magnitude.
		DiffTolerance: 0.9,
	}
	ranks := []int{2, 4}
	inserts := 8192
	if o.Quick {
		ranks = []int{2}
		inserts = 2048
	}
	run := func(p int, aggregate bool) Point {
		r, wall := timed(func() dhtbench.Result {
			return dhtbench.Run(dhtbench.Params{
				Ranks: p, InsertsPerRank: inserts, Aggregate: aggregate,
				Adaptive: aggregate, // agg-on rides the AIMD controller
			})
		})
		return Point{Ranks: p, Value: r.InsertsPerSec,
			WallSeconds: wall, Counters: r.Counters()}
	}
	for _, p := range ranks {
		res.Series[0].Points = append(res.Series[0].Points, run(p, true))
		res.Series[1].Points = append(res.Series[1].Points, run(p, false))
	}
	return res
}

// CollBench measures barrier latency on real transports, flat vs
// hierarchical (see internal/bench/collbench): the flat series is the
// wire conduit's linear gather-through-rank-0 collective; hier-packed
// co-locates all ranks on one virtual host (the shm arrive/release
// phase plus a single leader — the intra-node story); hier-spread
// packs 2 ranks per host, exercising the shm phase AND the
// dissemination rounds among leaders together. Wall-clock and
// best-of-repeats, like DHTBench; the allgather latency and total
// frame counts ride along as counters.
func CollBench(o Options) Result {
	res := Result{
		ID: "collbench", PaperRef: "§III-F / §IV (beyond the paper)",
		Title:  "Barrier latency: flat wire vs hierarchical (shm + leader dissemination)",
		Metric: "latency", Unit: "usec/barrier",
		Quick:   o.Quick,
		Profile: sim.NewProfile(sim.Local, sim.SWUPCXX),
		Series: []Series{
			{Name: "flat-tcp", System: "upcxx"},
			{Name: "hier-spread", System: "upcxx"},
			{Name: "hier-packed", System: "upcxx"},
		},
		SweepLabel: "ranks", Format: "%.3g", Ratio: true,
		// Wall-clock latency on shared CI runners drifts far more than
		// the virtual-time sweeps; gate only order-of-magnitude.
		DiffTolerance: 0.9,
	}
	ranks := []int{2, 4, 8, 16}
	iters, repeats := 64, 5
	if o.Quick {
		ranks = []int{2, 4, 8}
		iters, repeats = 32, 3
	}
	run := func(p, ppn int, hier bool) Point {
		r, wall := timed(func() collbench.Result {
			return collbench.Run(collbench.Params{
				Ranks: p, PPN: ppn, Hier: hier, Iters: iters, Repeats: repeats,
			})
		})
		return Point{Ranks: p, Value: r.BarrierUsec,
			WallSeconds: wall, Counters: r.Counters()}
	}
	for _, p := range ranks {
		res.Series[0].Points = append(res.Series[0].Points, run(p, 1, false))
		if p >= 4 {
			res.Series[1].Points = append(res.Series[1].Points, run(p, 2, true))
		}
		res.Series[2].Points = append(res.Series[2].Points, run(p, p, true))
	}
	return res
}

// RPCBench measures the registered-task invocation layer on the real
// TCP wire conduit: remote-procedure-call throughput under
// distributed-finish completion, with the aggregation batch plane
// coalescing requests and done-acks vs disabled, plus the wire-frame
// cost per RPC from the conduit's per-handler counters. Wall-clock,
// like DHTBench, and gated with the same wide tolerance.
func RPCBench(o Options) Result {
	res := Result{
		ID: "rpcbench", PaperRef: "§III-G / §IV (beyond the paper)",
		Title:  "Registered-task RPCs over the wire conduit, batched vs unbatched",
		Metric: "throughput", Unit: "RPCs/s",
		Quick:   o.Quick,
		Profile: sim.NewProfile(sim.Local, sim.SWUPCXX),
		Series: []Series{
			{Name: "batched", System: "upcxx"},
			{Name: "unbatched", System: "upcxx"},
		},
		SweepLabel: "ranks", Format: "%.3g", Ratio: true,
		// Wall-clock throughput on shared CI runners drifts far more
		// than the virtual-time sweeps; gate only order-of-magnitude.
		DiffTolerance: 0.9,
	}
	ranks := []int{2, 4}
	rpcs := 4096
	if o.Quick {
		ranks = []int{2}
		rpcs = 1024
	}
	run := func(p int, aggregate bool) Point {
		r, wall := timed(func() rpcbench.Result {
			return rpcbench.Run(rpcbench.Params{
				Ranks: p, RPCsPerRank: rpcs, Aggregate: aggregate,
				Adaptive: aggregate, // batched rides the AIMD controller
			})
		})
		return Point{Ranks: p, Value: r.RPCsPerSec,
			WallSeconds: wall, Counters: r.Counters()}
	}
	for _, p := range ranks {
		res.Series[0].Points = append(res.Series[0].Points, run(p, true))
		res.Series[1].Points = append(res.Series[1].Points, run(p, false))
	}
	return res
}

// FutBench measures the futures-first completion model on the real TCP
// wire conduit: chained non-blocking reads (ReadAsync + Then, resolved
// from progress dispatch as replies land) against blocking Reads, in
// reader/server rank pairs where round-trip latency dominates. Both
// modes are verified against a pure reference fold inside the
// benchmark. Wall-clock, like DHTBench, and gated with the same wide
// tolerance.
func FutBench(o Options) Result {
	res := Result{
		ID: "futbench", PaperRef: "§III-D / §V-E (beyond the paper)",
		Title:  "Chained ReadAsync+Then vs blocking Reads over the wire conduit",
		Metric: "throughput", Unit: "reads/s",
		Quick:   o.Quick,
		Profile: sim.NewProfile(sim.Local, sim.SWUPCXX),
		Series: []Series{
			{Name: "futures", System: "upcxx"},
			{Name: "blocking", System: "upcxx"},
		},
		SweepLabel: "ranks", Format: "%.3g", Ratio: true,
		// Wall-clock throughput on shared CI runners drifts far more
		// than the virtual-time sweeps; gate only order-of-magnitude.
		DiffTolerance: 0.9,
	}
	ranks := []int{2, 4}
	reads := 8192
	if o.Quick {
		ranks = []int{2}
		reads = 2048
	}
	run := func(p int, futures bool) Point {
		r, wall := timed(func() futbench.Result {
			return futbench.Run(futbench.Params{
				Ranks: p, ReadsPerRank: reads, Futures: futures,
			})
		})
		return Point{Ranks: p, Value: r.ReadsPerSec,
			WallSeconds: wall, Counters: r.Counters()}
	}
	for _, p := range ranks {
		res.Series[0].Points = append(res.Series[0].Points, run(p, true))
		res.Series[1].Points = append(res.Series[1].Points, run(p, false))
	}
	return res
}

// LoadCurve traces the aggregation layer's latency-vs-throughput
// trade-off over the wire conduit: rank 0 paces aggregated active
// messages toward rank 1 at a swept offered rate and rank 1 samples
// issue-to-apply latency in the handler (see internal/bench/loadcurve),
// with static flush thresholds vs the adaptive AIMD controller as the
// two series. The headline value is the p50 one-way latency at each
// offered rate; achieved rate, p99 and realized batch occupancy ride
// along as counters. Wall-clock, like DHTBench, and gated with the
// same wide tolerance.
func LoadCurve(o Options) Result {
	res := Result{
		ID: "loadcurve", PaperRef: "§IV (beyond the paper)",
		Title:  "Aggregation latency vs offered load, adaptive vs static (p50 usec)",
		Metric: "latency", Unit: "usec",
		Quick:   o.Quick,
		Profile: sim.NewProfile(sim.Local, sim.SWUPCXX),
		Series: []Series{
			{Name: "adaptive", System: "upcxx"},
			{Name: "static", System: "upcxx"},
		},
		// The sweep axis is offered load (kops/s), not rank count.
		SweepLabel: "offered_kops", Format: "%.3g", Ratio: true,
		// Wall-clock latency on shared CI runners drifts far more than
		// the virtual-time sweeps; gate only order-of-magnitude.
		DiffTolerance: 0.9,
	}
	rates := []int{1, 8, 64, 256}
	repeats := 2
	if o.Quick {
		rates = []int{1, 64}
		repeats = 1
	}
	run := func(rate int, adaptive bool) Point {
		// Roughly a second of offered load at the trickle end, capped
		// so the fast points stay fast; always enough ops for the
		// controller to converge (a few hundred).
		ops := rate * 1000
		if ops > 6000 {
			ops = 6000
		}
		if ops < 600 {
			ops = 600
		}
		r, wall := timed(func() loadcurve.Result {
			return loadcurve.Run(loadcurve.Params{
				OfferedKops: rate, Ops: ops, Adaptive: adaptive, Repeats: repeats,
			})
		})
		return Point{Ranks: rate, Value: r.P50Usec,
			WallSeconds: wall, Counters: r.Counters()}
	}
	for _, rate := range rates {
		res.Series[0].Points = append(res.Series[0].Points, run(rate, true))
		res.Series[1].Points = append(res.Series[1].Points, run(rate, false))
	}
	return res
}

// Gatebench drives the service plane end to end: an in-process gateway
// job (3 compute ranks + the gateway, K=2 replicated DHT) behind a real
// HTTP server, loaded by a closed loop of N workers on zipfian keys
// (see internal/bench/gatebench). The sweep axis is worker concurrency;
// the single series uses per-op PUT/GET requests, the batch series
// packs 64 ops per request through the batch endpoints, and the chaos
// series kills one replica holder mid-measurement — its lost counter
// (acked writes missing afterwards) must read zero and rides along for
// the diff gate. Wall-clock like dhtbench, gated order-of-magnitude.
func Gatebench(o Options) Result {
	res := Result{
		ID: "gatebench", PaperRef: "§IV (beyond the paper)",
		Title:  "HTTP gateway closed-loop load: throughput and tail latency (ops/s)",
		Metric: "throughput", Unit: "ops/s",
		Quick:   o.Quick,
		Profile: sim.NewProfile(sim.Local, sim.SWUPCXX),
		Series: []Series{
			{Name: "single", System: "upcxx"},
			{Name: "batch64", System: "upcxx"},
			{Name: "chaos", System: "upcxx"},
		},
		SweepLabel: "workers", Format: "%.3g",
		// Wall-clock QPS on shared CI runners drifts like the other
		// wall-clock benches; gate only order-of-magnitude.
		DiffTolerance: 0.9,
	}
	workers := []int{8, 32, 64}
	measure := time.Second
	if o.Quick {
		workers = []int{8, 32}
		measure = 400 * time.Millisecond
	}
	run := func(w, batch int, chaos bool) Point {
		r, wall := timed(func() gatebench.Result {
			pp := gatebench.Params{
				Ranks: 3, Scale: 1 << 14, Workers: w, Zipf: true,
				BatchSize: batch,
				Warmup:    150 * time.Millisecond, Measure: measure,
			}
			if chaos {
				pp.Chaos, pp.KillRank, pp.KillAfter = true, 1, measure/3
			}
			return gatebench.Run(pp)
		})
		return Point{Ranks: w, Value: r.QPS, WallSeconds: wall, Counters: r.Counters()}
	}
	for _, w := range workers {
		res.Series[0].Points = append(res.Series[0].Points, run(w, 0, false))
		res.Series[1].Points = append(res.Series[1].Points, run(w, 64, false))
		res.Series[2].Points = append(res.Series[2].Points, run(w, 0, true))
	}
	return res
}

// Fig5 reproduces "Stencil weak scaling performance (GFLOPS) on Cray
// XC30": Titanium vs UPC++ over 24..6144 cores.
func Fig5(o Options) Result {
	res := Result{
		ID: "fig5", PaperRef: "§V-B Fig 5",
		Title:  "Fig 5 — Stencil weak scaling, Cray XC30 (GFLOPS)",
		Metric: "throughput", Unit: "GFLOPS",
		Quick:   o.Quick,
		Profile: sim.NewProfile(sim.Edison, sim.SWTitanium, sim.SWUPCXX),
		Series: []Series{
			{Name: "Titanium", System: "titanium"},
			{Name: "UPC++", System: "upcxx"},
		},
		SweepLabel: "cores", Format: "%.1f", Ratio: true,
	}
	keep := caps(o, 192)
	box, iters := 16, 4
	if o.Quick {
		box = 12
	}
	run := func(p int, flavor string) Point {
		r, wall := timed(func() stencil.Result {
			return stencil.Run(stencil.Params{Ranks: p, Box: box, Iters: iters,
				Flavor: flavor, Machine: sim.Edison, Virtual: true})
		})
		return Point{Ranks: p, Value: r.GFLOPS, VirtualSeconds: r.Seconds,
			WallSeconds: wall, Counters: r.Counters()}
	}
	for _, p := range []int{24, 48, 96, 192, 384, 768, 1536, 3072, 6144} {
		if !keep(p) {
			continue
		}
		res.Series[0].Points = append(res.Series[0].Points, run(p, "titanium"))
		res.Series[1].Points = append(res.Series[1].Points, run(p, "upcxx"))
	}
	return res
}

// Fig6 reproduces "Sample Sort weak scaling performance (TB/min) on Cray
// XC30": UPC vs UPC++ over 1..12288 cores.
func Fig6(o Options) Result {
	res := Result{
		ID: "fig6", PaperRef: "§V-C Fig 6",
		Title:  "Fig 6 — Sample Sort weak scaling, Cray XC30 (TB/min)",
		Metric: "throughput", Unit: "TB/min",
		Quick:   o.Quick,
		Profile: sim.NewProfile(sim.Edison, sim.SWUPC, sim.SWUPCXX),
		Series: []Series{
			{Name: "UPC", System: "upc"},
			{Name: "UPC++", System: "upcxx"},
		},
		SweepLabel: "cores", Format: "%.3g", Ratio: true,
	}
	keep := caps(o, 192)
	keys := 65536
	if o.Quick {
		keys = 8192
	}
	run := func(p, kp int, flavor string) Point {
		r, wall := timed(func() samplesort.Result {
			return samplesort.Run(samplesort.Params{Ranks: p, KeysPerRank: kp,
				Flavor: flavor, Machine: sim.Edison, Virtual: true})
		})
		return Point{Ranks: p, Value: r.TBPerMin, VirtualSeconds: r.Seconds,
			WallSeconds: wall, Counters: r.Counters()}
	}
	for _, p := range []int{1, 2, 4, 8, 12, 24, 48, 96, 192, 384, 768, 1536, 3072, 6144, 12288} {
		if !keep(p) {
			continue
		}
		kp := keys
		if p >= 3072 {
			kp = keys / 8 // bound total memory at the largest sweeps
		}
		res.Series[0].Points = append(res.Series[0].Points, run(p, kp, "upc"))
		res.Series[1].Points = append(res.Series[1].Points, run(p, kp, "upcxx"))
	}
	return res
}

// Fig7 reproduces "Embree ray tracing strong scaling performance on Cray
// XC30": speedup vs core count for the UPC++ renderer (one rank per
// 24-core node, node-local workers model the OpenMP threads).
func Fig7(o Options) Result {
	res := Result{
		ID: "fig7", PaperRef: "§V-D Fig 7",
		Title:  "Fig 7 — Ray tracing strong scaling, Cray XC30 (speedup)",
		Metric: "speedup", Unit: "x",
		Quick:   o.Quick,
		Profile: sim.NewProfile(sim.Edison, sim.SWUPCXX),
		Series: []Series{
			{Name: "speedup", System: "upcxx"},
			{Name: "ideal"},
		},
		SweepLabel: "cores", Format: "%.1f",
	}
	keep := caps(o, 192)
	w, h, spp := 192, 128, 16
	if o.Quick {
		w, h, spp = 96, 64, 4
	}
	var t24 float64
	for _, cores := range []int{24, 48, 96, 192, 384, 768, 1536, 3072, 6144} {
		if !keep(cores) {
			continue
		}
		r, wall := timed(func() raytrace.Result {
			return raytrace.Run(raytrace.Params{
				Ranks: cores / 24, Width: w, Height: h, SPP: spp, Tile: 4,
				Machine: sim.Edison, Virtual: true,
				// Model Embree-scale scene complexity (BVH over thousands
				// of primitives): the small verification scene is traced
				// for real, its bounce count charged at production weight.
				FlopsPerBounce: 1e6,
			})
		})
		if t24 == 0 {
			t24 = r.Seconds * 24
		}
		res.Series[0].Points = append(res.Series[0].Points, Point{
			Ranks: cores, Value: t24 / r.Seconds, VirtualSeconds: r.Seconds,
			WallSeconds: wall, Counters: r.Counters()})
		res.Series[1].Points = append(res.Series[1].Points, Point{
			Ranks: cores, Value: float64(cores)})
	}
	return res
}

// Fig8 reproduces "LULESH weak scaling performance on Cray XC30": FOM
// (zones/s) vs core count, MPI vs UPC++, perfect-cube process counts.
func Fig8(o Options) Result {
	res := Result{
		ID: "fig8", PaperRef: "§V-E Fig 8",
		Title:  "Fig 8 — LULESH weak scaling, Cray XC30 (FOM z/s)",
		Metric: "figure_of_merit", Unit: "zones/s",
		Quick:   o.Quick,
		Profile: sim.NewProfile(sim.Edison, sim.SWMPI, sim.SWUPCXX),
		Series: []Series{
			{Name: "MPI", System: "mpi"},
			{Name: "UPC++", System: "upcxx"},
		},
		SweepLabel: "cores", Format: "%.3g", Ratio: true,
	}
	sides := []int{4, 6, 8, 10, 16, 20, 24, 32} // 64..32768 ranks
	if o.Quick {
		sides = []int{2, 3, 4}
	}
	e, iters := 6, 4
	run := func(s int, flavor string) Point {
		// ComputeScale models production LULESH zone cost over the
		// proxy's smaller per-zone arithmetic (see lulesh.Params).
		r, wall := timed(func() lulesh.Result {
			return lulesh.Run(lulesh.Params{Side: s, E: e, Iters: iters,
				Flavor: flavor, Machine: sim.Edison, Virtual: true, ComputeScale: 16})
		})
		return Point{Ranks: s * s * s, Value: r.FOM, VirtualSeconds: r.Seconds,
			WallSeconds: wall, Counters: r.Counters()}
	}
	for _, s := range sides {
		res.Series[0].Points = append(res.Series[0].Points, run(s, "mpi"))
		res.Series[1].Points = append(res.Series[1].Points, run(s, "upcxx"))
	}
	return res
}
