// Package harness regenerates every table and figure of the paper's
// evaluation section (§V): Fig 4 / Table IV (Random Access), Fig 5
// (Stencil), Fig 6 (Sample Sort), Fig 7 (Embree ray tracing) and Fig 8
// (LULESH). Each experiment prints the same rows/series the paper
// reports; cmd/upcxx-bench is the CLI wrapper.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	seps := make([]string, len(t.Headers))
	for i, wd := range widths {
		seps[i] = strings.Repeat("-", wd)
	}
	line(seps)
	for _, r := range t.Rows {
		line(r)
	}
}

// Markdown renders the table as a GitHub-flavored markdown table (used
// to embed measured results in EXPERIMENTS.md).
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "\n**%s**\n\n", t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func g3(v float64) string { return fmt.Sprintf("%.3g", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
