// Package harness is the experiment subsystem that regenerates every
// table and figure of the paper's evaluation section (§V): Fig 4 /
// Table IV (Random Access), Fig 5 (Stencil), Fig 6 (Sample Sort), Fig 7
// (Embree-style ray tracing) and Fig 8 (LULESH).
//
// Experiments are registered by name in a Registry; each run function
// returns a typed Result — experiment id, paper reference, rank sweep as
// Series of Points, metric name and unit, per-point virtual-time and
// wall-time seconds plus raw counters, and the machine/software profile
// (sim.Profile) the numbers were produced under. Results render through
// pluggable Renderers (aligned text, markdown, JSON); the JSON form is
// the BENCH_*.json artifact schema that seeds the repo's performance
// trajectory. cmd/upcxx-bench is the CLI wrapper.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"upcxx/internal/sim"
)

// Schema identifies the JSON artifact format emitted by this package.
// Bump when Report/Result shapes change incompatibly.
const Schema = "upcxx-bench/v1"

// Options selects the sweep size. Quick selects reduced sweeps (fast
// laptop and CI runs); the full sweeps reach the paper's largest scales
// (8192, 6144, 12288 and 32768 ranks).
type Options struct {
	Quick bool
}

// Point is one measurement of a rank sweep: the headline metric value at
// one rank count, with the virtual-time seconds the LogGP model charged,
// the wall-clock seconds the run actually took on the host, and the
// benchmark's raw counters (updates/s, zones/s, keys sorted, ...).
type Point struct {
	Ranks          int                `json:"ranks"`
	Value          float64            `json:"value"`
	VirtualSeconds float64            `json:"virtual_seconds"`
	WallSeconds    float64            `json:"wall_seconds"`
	Counters       map[string]float64 `json:"counters,omitempty"`
}

// Series is one line of a figure — e.g. the "UPC++" curve of Fig 4 —
// tagged with the software profile (sim.SW name) that produced it.
type Series struct {
	Name   string  `json:"name"`
	System string  `json:"system,omitempty"`
	Points []Point `json:"points"`
}

// Result is the typed outcome of one experiment: identity (ID, PaperRef,
// Title), what was measured (Metric, Unit), how (Quick, Profile), and the
// measured Series. SweepLabel, Format and Ratio are rendering hints so
// the text/markdown renderers reproduce the paper's table shapes.
type Result struct {
	ID       string `json:"id"`
	PaperRef string `json:"paper_ref"`
	Title    string `json:"title"`
	Metric   string `json:"metric"`
	Unit     string `json:"unit"`
	Quick    bool   `json:"quick"`

	// Profile records the machine and software halves of the performance
	// model in force for this run, making the artifact self-describing.
	Profile sim.Profile `json:"profile"`

	Series []Series `json:"series"`

	// SweepLabel names the x axis ("cores", "THREADS").
	SweepLabel string `json:"sweep_label"`
	// Format is the fmt verb for metric values in text renderers.
	Format string `json:"format,omitempty"`
	// Ratio asks text renderers for a derived last/first-series column
	// (the paper's UPC++/UPC style comparison); it is redundant in JSON.
	Ratio bool `json:"ratio,omitempty"`

	// DiffTolerance, when non-zero, widens the -diff gate's relative
	// drift tolerance for this experiment (the gate uses the larger of
	// this and the global -tol). Wall-clock experiments (dhtbench) set
	// it: host speed varies across CI runners in a way the virtual-time
	// sweeps do not.
	DiffTolerance float64 `json:"diff_tolerance,omitempty"`
}

// Ranks returns the sorted union of rank counts across the result's
// series (the x axis of the rendered table).
func (r Result) Ranks() []int {
	set := map[int]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			set[p.Ranks] = true
		}
	}
	ranks := make([]int, 0, len(set))
	for k := range set {
		ranks = append(ranks, k)
	}
	sort.Ints(ranks)
	return ranks
}

// point returns the series' point at the given rank count.
func (s Series) point(ranks int) (Point, bool) {
	for _, p := range s.Points {
		if p.Ranks == ranks {
			return p, true
		}
	}
	return Point{}, false
}

// Report is the top-level JSON artifact: schema tag, host metadata, and
// one Result per experiment run.
type Report struct {
	Schema    string   `json:"schema"`
	Generated string   `json:"generated,omitempty"` // RFC3339, UTC
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Quick     bool     `json:"quick"`
	Results   []Result `json:"results"`
}

// NewReport wraps results in a Report stamped with host metadata.
func NewReport(o Options, results []Result) Report {
	return Report{
		Schema:    Schema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     o.Quick,
		Results:   results,
	}
}

// RunFunc runs one experiment.
type RunFunc func(Options) Result

// Experiment is a registry entry: a named, paper-referenced experiment.
type Experiment struct {
	ID       string
	Aliases  []string
	PaperRef string
	Title    string
	Run      RunFunc
}

// registry holds the experiments in paper order (see experiments.go).
var registry = []Experiment{
	{ID: "fig4", PaperRef: "§V-A Fig 4",
		Title: "Random Access latency per update, BG/Q", Run: Fig4},
	{ID: "tableiv", Aliases: []string{"tab4", "table4"}, PaperRef: "§V-A Table IV",
		Title: "Random Access GUPS", Run: TableIV},
	{ID: "fig5", PaperRef: "§V-B Fig 5",
		Title: "Stencil weak scaling, Cray XC30", Run: Fig5},
	{ID: "fig6", PaperRef: "§V-C Fig 6",
		Title: "Sample Sort weak scaling, Cray XC30", Run: Fig6},
	{ID: "fig7", PaperRef: "§V-D Fig 7",
		Title: "Ray tracing strong scaling, Cray XC30", Run: Fig7},
	{ID: "fig8", PaperRef: "§V-E Fig 8",
		Title: "LULESH weak scaling, Cray XC30", Run: Fig8},
	{ID: "dhtbench", Aliases: []string{"dht"}, PaperRef: "§IV (beyond the paper)",
		Title: "DHT inserts over the wire conduit, aggregation on vs off", Run: DHTBench},
	{ID: "collbench", Aliases: []string{"coll"}, PaperRef: "§III-F / §IV (beyond the paper)",
		Title: "Barrier latency: flat wire vs hierarchical conduit", Run: CollBench},
	{ID: "rpcbench", Aliases: []string{"rpc"}, PaperRef: "§III-G / §IV (beyond the paper)",
		Title: "Registered-task RPCs over the wire conduit, batched vs unbatched", Run: RPCBench},
	{ID: "futbench", Aliases: []string{"fut"}, PaperRef: "§III-D / §V-E (beyond the paper)",
		Title: "Chained ReadAsync+Then vs blocking Reads over the wire conduit", Run: FutBench},
	{ID: "loadcurve", Aliases: []string{"load", "curve"}, PaperRef: "§IV (beyond the paper)",
		Title: "Aggregation latency vs offered load, adaptive vs static", Run: LoadCurve},
	{ID: "gatebench", Aliases: []string{"gate"}, PaperRef: "§IV (beyond the paper)",
		Title: "HTTP gateway closed-loop load: throughput and tail latency", Run: Gatebench},
}

// Experiments returns the registered experiments in paper order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup resolves an experiment by id or alias (case-insensitive). The
// pseudo-name "all" is not an experiment; callers expand it via
// Experiments.
func Lookup(name string) (Experiment, bool) {
	name = strings.ToLower(strings.TrimSpace(name))
	for _, e := range registry {
		if e.ID == name {
			return e, true
		}
		for _, a := range e.Aliases {
			if a == name {
				return e, true
			}
		}
	}
	return Experiment{}, false
}

// Names returns every experiment id plus "all", for usage strings.
func Names() []string {
	names := make([]string, 0, len(registry)+1)
	for _, e := range registry {
		names = append(names, e.ID)
	}
	return append(names, "all")
}

// timed runs f and reports its wall-clock seconds alongside its result.
func timed[T any](f func() T) (T, float64) {
	t0 := time.Now()
	v := f()
	return v, time.Since(t0).Seconds()
}

func fv(format string, v float64) string {
	if format == "" {
		format = "%.3g"
	}
	return fmt.Sprintf(format, v)
}
