package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The health table mirrors rank liveness for the debug endpoint. It is
// deliberately obs-owned state, fed by the conduits' death detection
// (core.markRankDead / wire heartbeat) rather than read from them, so
// /debug/ranks never races runtime internals.
var (
	healthMu sync.Mutex
	healthN  int            // world size, 0 = unknown
	healthD  map[int]string // dead rank -> reason
)

// InitHealth declares the world size for the liveness table.
func InitHealth(ranks int) {
	healthMu.Lock()
	defer healthMu.Unlock()
	healthN = ranks
	healthD = map[int]string{}
}

// MarkDead records a rank as dead with a reason. Idempotent; the first
// reason wins.
func MarkDead(rank int, reason string) {
	healthMu.Lock()
	defer healthMu.Unlock()
	if healthD == nil {
		healthD = map[int]string{}
	}
	if _, ok := healthD[rank]; !ok {
		healthD[rank] = reason
	}
}

func resetHealth() {
	healthMu.Lock()
	defer healthMu.Unlock()
	healthN = 0
	healthD = nil
}

// HealthJSON renders the liveness table as a JSON object:
// {"ranks":N,"alive":[...],"dead":{"3":"heartbeat timeout"}}.
func HealthJSON() string {
	healthMu.Lock()
	n := healthN
	dead := make(map[int]string, len(healthD))
	for r, why := range healthD {
		dead[r] = why
	}
	healthMu.Unlock()

	var alive []int
	for i := 0; i < n; i++ {
		if _, d := dead[i]; !d {
			alive = append(alive, i)
		}
	}
	deadRanks := make([]int, 0, len(dead))
	for r := range dead {
		deadRanks = append(deadRanks, r)
	}
	sort.Ints(deadRanks)

	var b strings.Builder
	fmt.Fprintf(&b, "{\"ranks\":%d,\"alive\":[", n)
	for i, r := range alive {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", r)
	}
	b.WriteString("],\"dead\":{")
	for i, r := range deadRanks {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%q", fmt.Sprintf("%d", r), dead[r])
	}
	b.WriteString("}}")
	return b.String()
}
