package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// Flush reasons carried in KAggFlush's arg; shared here so the agg
// layer and the trace exporter agree on the encoding.
const (
	FlushMaxOps = iota + 1
	FlushMaxBytes
	FlushMaxAge
	FlushExplicit
	FlushBarrier
)

// FlushReasonName names a KAggFlush arg value.
func FlushReasonName(r uint64) string {
	switch r {
	case FlushMaxOps:
		return "MaxOps"
	case FlushMaxBytes:
		return "MaxBytes"
	case FlushMaxAge:
		return "MaxAge"
	case FlushExplicit:
		return "explicit"
	case FlushBarrier:
		return "barrier"
	}
	return "unknown"
}

// TraceEvent is one Chrome trace_event record. Timestamps are
// microseconds; within a per-process file they are relative to that
// process's obs epoch (the wall anchor rides in otherData).
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the JSON-object form of a Chrome trace.
type TraceFile struct {
	TraceEvents []TraceEvent      `json:"traceEvents"`
	OtherData   map[string]string `json:"otherData,omitempty"`
}

// eventArgs builds the args map for one ring event.
func eventArgs(e Event) map[string]any {
	var m map[string]any
	set := func(k string, v any) {
		if m == nil {
			m = map[string]any{}
		}
		m[k] = v
	}
	if e.Peer >= 0 {
		set("peer", e.Peer)
	}
	if e.Bytes > 0 {
		set("bytes", e.Bytes)
	}
	if e.Arg != 0 {
		if e.Kind == KAggFlush {
			set("reason", FlushReasonName(e.Arg))
		} else if e.Kind == KWireTx || e.Kind == KWireRx {
			set("handler", e.Arg)
		} else {
			set("arg", e.Arg)
		}
	}
	return m
}

// RingTraceEvents converts a ring snapshot into Chrome trace events.
// Begin/End records are paired LIFO per kind into "X" complete events
// (robust against wraparound: orphaned Ends are dropped, Begins left
// open at the end of the ring are closed at the last timestamp seen).
// Instants become "i" events with thread scope.
func RingTraceEvents(r *Ring) []TraceEvent {
	evs := r.Snapshot()
	if len(evs) == 0 {
		return nil
	}
	maxNs := evs[len(evs)-1].TNs
	for _, e := range evs {
		if e.TNs > maxNs {
			maxNs = e.TNs
		}
	}
	pid, tid := r.pid, r.rank
	var out []TraceEvent
	open := map[Kind][]Event{}
	emit := func(b Event, endNs uint64) {
		out = append(out, TraceEvent{
			Name: b.Kind.Name(), Cat: b.Kind.Category(), Ph: "X",
			Ts: float64(b.TNs) / 1e3, Dur: float64(endNs-b.TNs) / 1e3,
			Pid: pid, Tid: tid, Args: eventArgs(b),
		})
	}
	for _, e := range evs {
		switch e.Ev {
		case evBegin:
			open[e.Kind] = append(open[e.Kind], e)
		case evEnd:
			st := open[e.Kind]
			if len(st) == 0 {
				continue // begin lost to wraparound
			}
			b := st[len(st)-1]
			open[e.Kind] = st[:len(st)-1]
			emit(b, e.TNs)
		case evInstant:
			out = append(out, TraceEvent{
				Name: e.Kind.Name(), Cat: e.Kind.Category(), Ph: "i",
				Ts: float64(e.TNs) / 1e3, Pid: pid, Tid: tid,
				S: "t", Args: eventArgs(e),
			})
		}
	}
	for _, st := range open {
		for _, b := range st {
			emit(b, maxNs) // still running at dump time
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })
	return out
}

// WriteProcessTrace writes every ring in this process as one Chrome
// trace JSON object, with the process's wall-clock epoch anchor in
// otherData for cross-process alignment by the merger.
func WriteProcessTrace(w io.Writer) error {
	tf := TraceFile{
		TraceEvents: []TraceEvent{},
		OtherData: map[string]string{
			"epochNs": strconv.FormatInt(EpochWallNs(), 10),
		},
	}
	var dropped uint64
	for _, r := range Rings() {
		tf.TraceEvents = append(tf.TraceEvents, RingTraceEvents(r)...)
		dropped += r.Dropped()
	}
	if dropped > 0 {
		tf.OtherData["droppedEvents"] = strconv.FormatUint(dropped, 10)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&tf)
}

// DumpTraceFile writes this process's trace to dir as
// trace-rank<R>.json, where R is the lowest rank hosted here. It is
// the child-side half of `upcxx-run -trace`.
func DumpTraceFile(dir string, rank int) error {
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, fmt.Sprintf("trace-rank%03d.json", rank))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteProcessTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// mergeTraceFiles aligns per-process traces by their wall epoch
// anchors (all processes share one host clock), re-zeroes the merged
// timeline at the earliest anchor, and returns the combined trace
// sorted by timestamp.
func mergeTraceFiles(parts []TraceFile) TraceFile {
	minEpoch := int64(0)
	anchors := make([]int64, len(parts))
	for i, pt := range parts {
		anchor, _ := strconv.ParseInt(pt.OtherData["epochNs"], 10, 64)
		anchors[i] = anchor
		if minEpoch == 0 || (anchor != 0 && anchor < minEpoch) {
			minEpoch = anchor
		}
	}
	merged := TraceFile{
		TraceEvents: []TraceEvent{},
		OtherData: map[string]string{
			"epochNs": strconv.FormatInt(minEpoch, 10),
			"merged":  strconv.Itoa(len(parts)),
		},
	}
	for i, pt := range parts {
		shiftUs := float64(0)
		if anchors[i] != 0 {
			shiftUs = float64(anchors[i]-minEpoch) / 1e3
		}
		for _, e := range pt.TraceEvents {
			e.Ts += shiftUs
			merged.TraceEvents = append(merged.TraceEvents, e)
		}
	}
	sort.SliceStable(merged.TraceEvents, func(i, j int) bool {
		return merged.TraceEvents[i].Ts < merged.TraceEvents[j].Ts
	})
	return merged
}

// MergeTraceDir reads every trace-*.json in dir, merges them with
// mergeTraceFiles, and writes the combined trace to outPath.
// Returns the number of events merged.
func MergeTraceDir(dir, outPath string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "trace-*.json"))
	if err != nil {
		return 0, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return 0, fmt.Errorf("obs: no trace-*.json files in %s", dir)
	}
	var parts []TraceFile
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return 0, err
		}
		var tf TraceFile
		if err := json.Unmarshal(data, &tf); err != nil {
			return 0, fmt.Errorf("obs: %s: %w", p, err)
		}
		parts = append(parts, tf)
	}
	merged := mergeTraceFiles(parts)
	f, err := os.Create(outPath)
	if err != nil {
		return 0, err
	}
	if err := json.NewEncoder(f).Encode(&merged); err != nil {
		f.Close()
		return 0, err
	}
	return len(merged.TraceEvents), f.Close()
}

// TraceSummary is what ValidateTrace reports about a merged trace.
type TraceSummary struct {
	Events     int
	Categories map[string]int // events per subsystem
	Tids       map[int]int    // events per rank
}

// ValidateTrace parses Chrome trace JSON and checks structural
// sanity: every event has a name and a known phase, complete events
// have non-negative ts/dur, and per-tid timestamps are consistent
// (an event never ends after a later-starting sibling began earlier
// than it — i.e. spans nest or follow, never tear). Used by the
// golden test and the upcxx-trace CI checker.
func ValidateTrace(data []byte) (TraceSummary, error) {
	s := TraceSummary{Categories: map[string]int{}, Tids: map[int]int{}}
	var tf TraceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return s, fmt.Errorf("invalid trace JSON: %w", err)
	}
	for i, e := range tf.TraceEvents {
		if e.Name == "" {
			return s, fmt.Errorf("event %d: empty name", i)
		}
		switch e.Ph {
		case "X":
			if e.Dur < 0 {
				return s, fmt.Errorf("event %d (%s): negative dur %g", i, e.Name, e.Dur)
			}
		case "i", "I", "M":
		default:
			return s, fmt.Errorf("event %d (%s): unexpected phase %q", i, e.Name, e.Ph)
		}
		if e.Ts < 0 {
			return s, fmt.Errorf("event %d (%s): negative ts %g", i, e.Name, e.Ts)
		}
		s.Events++
		s.Categories[e.Cat]++
		s.Tids[e.Tid]++
	}
	// Per-tid monotonic consistency: walking events in file order
	// (sorted by ts by the writer), ts must never decrease.
	last := map[int]float64{}
	for i, e := range tf.TraceEvents {
		if prev, ok := last[e.Tid]; ok && e.Ts < prev {
			return s, fmt.Errorf("event %d (%s): tid %d ts %g before %g", i, e.Name, e.Tid, e.Ts, prev)
		}
		last[e.Tid] = e.Ts
	}
	return s, nil
}
