package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is the process-wide typed metrics surface. Counters, gauges
// and histograms are created once (usually at component construction)
// and updated with atomics; sources are pull-time callbacks that fold
// in counter maps owned elsewhere (conduit caps, aggregator stats).
// Rendering (Prometheus text, Snapshot) only reads atomics and calls
// sources, so it is safe while a job is running.
type Registry struct {
	mu      sync.Mutex
	counts  map[string]*Counter
	gauges  map[string]*Gauge
	hists   map[string]*Histogram
	sources map[int]Source
	nextSrc int
}

// Source is a pull-time metrics callback: it returns a flat
// name->value map merged into renders under the source's rank label.
type Source struct {
	Rank int
	Pull func() map[string]int64
}

var reg = &Registry{
	counts:  map[string]*Counter{},
	gauges:  map[string]*Gauge{},
	hists:   map[string]*Histogram{},
	sources: map[int]Source{},
}

// Reg returns the process-wide registry.
func Reg() *Registry { return reg }

// Counter is a monotonically increasing metric.
type Counter struct {
	name string
	rank int
	v    atomic.Int64
}

// Add increments the counter. Safe on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one. Safe on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	name string
	rank int
	v    atomic.Int64
}

// Set stores the gauge value. Safe on nil.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge. Safe on nil.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the shared exponential bucket layout: powers of two
// starting at 1 (unit-agnostic — callers pick ns, bytes, ops...).
const histBuckets = 28

// Histogram counts observations into exponential (power-of-two)
// buckets; bucket i holds values in (2^(i-1), 2^i], bucket 0 holds
// <=1. Sum and count are tracked exactly.
type Histogram struct {
	name    string
	rank    int
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value. Safe on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	i := 0
	if v > 1 {
		i = bits.Len64(uint64(v - 1))
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// key builds the registry map key: name plus rank label.
func key(name string, rank int) string { return fmt.Sprintf("%s{rank=%d}", name, rank) }

// NewCounter returns the counter with the given name and rank label,
// creating it on first use.
func (r *Registry) NewCounter(name string, rank int) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, rank)
	c := r.counts[k]
	if c == nil {
		c = &Counter{name: name, rank: rank}
		r.counts[k] = c
	}
	return c
}

// NewGauge returns the gauge with the given name and rank label,
// creating it on first use.
func (r *Registry) NewGauge(name string, rank int) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, rank)
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{name: name, rank: rank}
		r.gauges[k] = g
	}
	return g
}

// NewHistogram returns the histogram with the given name and rank
// label, creating it on first use.
func (r *Registry) NewHistogram(name string, rank int) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, rank)
	h := r.hists[k]
	if h == nil {
		h = &Histogram{name: name, rank: rank}
		r.hists[k] = h
	}
	return h
}

// AddSource registers a pull-time counter source and returns a handle
// to remove it (ranks are torn down when a job ends).
func (r *Registry) AddSource(rank int, pull func() map[string]int64) (remove func()) {
	r.mu.Lock()
	id := r.nextSrc
	r.nextSrc++
	r.sources[id] = Source{Rank: rank, Pull: pull}
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		delete(r.sources, id)
		r.mu.Unlock()
	}
}

// reset drops all metrics and sources (tests / sequential jobs).
func (r *Registry) reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counts = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.hists = map[string]*Histogram{}
	r.sources = map[int]Source{}
}

// snapshotLocked copies out the live metric handles under the lock so
// rendering can read atomics without holding it.
func (r *Registry) snapshotLocked() (cs []*Counter, gs []*Gauge, hs []*Histogram, srcs []Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counts {
		cs = append(cs, c)
	}
	for _, g := range r.gauges {
		gs = append(gs, g)
	}
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	for _, s := range r.sources {
		srcs = append(srcs, s)
	}
	return
}

// Snapshot flattens every metric and source into one name->value map
// with "{rank=N}" labels, the shape the bench harness folds into its
// JSON output. Histograms contribute _count and _sum entries.
func (r *Registry) Snapshot() map[string]int64 {
	cs, gs, hs, srcs := r.snapshotLocked()
	out := map[string]int64{}
	for _, c := range cs {
		out[key(c.name, c.rank)] = c.Value()
	}
	for _, g := range gs {
		out[key(g.name, g.rank)] = g.Value()
	}
	for _, h := range hs {
		out[key(h.name+"_count", h.rank)] = h.Count()
		out[key(h.name+"_sum", h.rank)] = h.Sum()
	}
	for _, s := range srcs {
		if s.Pull == nil {
			continue
		}
		for name, v := range s.Pull() {
			out[key(name, s.Rank)] += v
		}
	}
	return out
}

// SnapshotOwn is Snapshot restricted to the registry's own typed
// metrics — sources are skipped. Used where the source-backed counters
// are already folded in elsewhere under different names (Stats).
func (r *Registry) SnapshotOwn() map[string]int64 {
	cs, gs, hs, _ := r.snapshotLocked()
	out := map[string]int64{}
	for _, c := range cs {
		out[key(c.name, c.rank)] = c.Value()
	}
	for _, g := range gs {
		out[key(g.name, g.rank)] = g.Value()
	}
	for _, h := range hs {
		if h.Count() == 0 {
			continue // don't pollute the bench JSON with empty series
		}
		out[key(h.name+"_count", h.rank)] = h.Count()
		out[key(h.name+"_sum", h.rank)] = h.Sum()
	}
	return out
}

// Prometheus renders the registry in the Prometheus text exposition
// format (one family per metric name, rank as a label). Sources render
// as untyped samples.
func (r *Registry) Prometheus() string {
	cs, gs, hs, srcs := r.snapshotLocked()
	var b strings.Builder

	type sample struct {
		rank int
		line string
	}
	families := map[string][]sample{}
	ftype := map[string]string{}

	add := func(name, typ string, rank int, line string) {
		families[name] = append(families[name], sample{rank, line})
		if ftype[name] == "" {
			ftype[name] = typ
		}
	}

	for _, c := range cs {
		add(c.name, "counter", c.rank,
			fmt.Sprintf("%s{rank=\"%d\"} %d", c.name, c.rank, c.Value()))
	}
	for _, g := range gs {
		add(g.name, "gauge", g.rank,
			fmt.Sprintf("%s{rank=\"%d\"} %d", g.name, g.rank, g.Value()))
	}
	for _, h := range hs {
		cum := int64(0)
		var lines []string
		for i := 0; i < histBuckets; i++ {
			n := h.buckets[i].Load()
			cum += n
			if n == 0 && i > 0 {
				continue // elide empty buckets, keep the shape readable
			}
			le := float64(math.Exp2(float64(i)))
			lines = append(lines, fmt.Sprintf("%s_bucket{rank=\"%d\",le=\"%g\"} %d",
				h.name, h.rank, le, cum))
		}
		lines = append(lines,
			fmt.Sprintf("%s_bucket{rank=\"%d\",le=\"+Inf\"} %d", h.name, h.rank, h.Count()),
			fmt.Sprintf("%s_sum{rank=\"%d\"} %d", h.name, h.rank, h.Sum()),
			fmt.Sprintf("%s_count{rank=\"%d\"} %d", h.name, h.rank, h.Count()))
		add(h.name, "histogram", h.rank, strings.Join(lines, "\n"))
	}
	for _, s := range srcs {
		if s.Pull == nil {
			continue
		}
		m := s.Pull()
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			add(name, "untyped", s.Rank,
				fmt.Sprintf("%s{rank=\"%d\"} %d", name, s.Rank, m[name]))
		}
	}

	famNames := make([]string, 0, len(families))
	for name := range families {
		famNames = append(famNames, name)
	}
	sort.Strings(famNames)
	for _, name := range famNames {
		ss := families[name]
		sort.Slice(ss, func(i, j int) bool { return ss[i].rank < ss[j].rank })
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, ftype[name])
		for _, s := range ss {
			b.WriteString(s.line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}
