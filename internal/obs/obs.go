// Package obs is the runtime's observability plane: low-overhead span
// tracing into per-rank ring buffers, a typed metrics registry rendered
// as Prometheus text and folded into the bench JSON, rank-liveness
// bookkeeping for the debug endpoint, and a leveled logging seam.
//
// The package is always compiled and runtime-gated: every tracing call
// site costs one predictable nil-check/atomic-load when tracing is off
// (asserted allocation-free by TestDisabledTracingOverhead), so the
// instrumentation threaded through core, agg, gasnet and transport can
// stay in the hot paths permanently. Tracing is enabled before a job
// constructs its conduits (upcxx-run's -trace / -debug-addr flags, or
// SetTracing in tests); rings are then handed out per rank by RingFor.
//
// Clocks: every event timestamp is nanoseconds since this process's
// obs epoch, captured once at init from the monotonic clock. The epoch
// also records its wall-clock anchor; the trace merger aligns rings
// from different processes by their wall anchors, which share one host
// clock in every launch mode this repo supports (upcxx-run spawns all
// ranks on one machine). See trace.go.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// epoch anchors all event timestamps. time.Now carries both the wall
// and the monotonic reading; time.Since(epoch) is purely monotonic,
// while epoch.UnixNano() is the wall anchor the merger aligns with.
var epoch = time.Now()

// EpochWallNs returns the wall-clock anchor of this process's trace
// timestamps (Unix nanoseconds at the obs epoch).
func EpochWallNs() int64 { return epoch.UnixNano() }

// nowNs returns nanoseconds since the obs epoch (monotonic).
func nowNs() uint64 { return uint64(time.Since(epoch)) }

// NowNs is the exported obs clock — the same time base trace records
// carry — for callers measuring latencies to pair with histograms.
func NowNs() uint64 { return nowNs() }

// tracing is the master gate every span call site checks.
var tracing atomic.Bool

// Enabled reports whether span tracing is on: exactly one atomic load,
// the whole cost a disabled call site pays beyond a branch.
func Enabled() bool { return tracing.Load() }

// SetTracing flips the span-tracing gate. Enable it before the job
// constructs its conduits: components capture their ring at
// construction, so a ring handed out while tracing is off stays nil
// (and every call site on it is a no-op forever).
func SetTracing(on bool) { tracing.Store(on) }

// DefaultRingEvents is the per-rank ring capacity when none is
// configured: 1<<15 records x 32 bytes = 1 MiB per rank.
const DefaultRingEvents = 1 << 15

// ringEvents is the capacity RingFor uses; set via SetRingEvents
// before the first RingFor call.
var ringEvents atomic.Int64

// SetRingEvents sets the per-rank ring capacity (rounded up to a power
// of two) for rings created afterwards.
func SetRingEvents(n int) { ringEvents.Store(int64(n)) }

// rings is the per-process ring registry, keyed by world rank. One
// process may host many ranks (the in-process backend, RunWireLocal),
// so the registry is locked; ring writes themselves are lock-free.
var (
	ringMu sync.Mutex
	rings  = map[int]*Ring{}
)

// RingFor returns rank's span ring, creating it on first use — or nil
// while tracing is disabled, which makes every span call on it a
// nil-check no-op. Components capture the ring once at construction.
func RingFor(rank int) *Ring {
	if !tracing.Load() {
		return nil
	}
	ringMu.Lock()
	defer ringMu.Unlock()
	r := rings[rank]
	if r == nil {
		n := int(ringEvents.Load())
		if n <= 0 {
			n = DefaultRingEvents
		}
		r = NewRing(rank, n)
		rings[rank] = r
	}
	return r
}

// Rings snapshots the registry: every ring created so far, in rank
// order. Used by the exporters.
func Rings() []*Ring {
	ringMu.Lock()
	defer ringMu.Unlock()
	out := make([]*Ring, 0, len(rings))
	for _, r := range rings {
		out = append(out, r)
	}
	sortRingsByRank(out)
	return out
}

func sortRingsByRank(rs []*Ring) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j-1].rank > rs[j].rank; j-- {
			rs[j-1], rs[j] = rs[j], rs[j-1]
		}
	}
}

// Reset clears the whole observability plane — rings, registry, and
// liveness — so sequential jobs in one process (tests) do not bleed
// into each other. It does not touch the tracing gate or verbosity.
func Reset() {
	ringMu.Lock()
	rings = map[int]*Ring{}
	ringMu.Unlock()
	Reg().reset()
	resetHealth()
}
