package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDebugPlane exercises the full path: a child state server
// advertising into a state dir, and the launcher handler fanning the
// HTTP queries out to it.
func TestDebugPlane(t *testing.T) {
	withTracing(t)
	dir := t.TempDir()

	Reg().NewCounter("upcxx_debug_probe", 4).Add(11)
	InitHealth(2)
	MarkDead(1, "heartbeat timeout")
	RingFor(4).Instant(KWireTx, 0, 8, 1)

	stop, err := StartStateServer(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	srv := httptest.NewServer(NewDebugHandler(dir))
	defer srv.Close()

	metrics := get(t, srv, "/debug/metrics")
	if !strings.Contains(metrics, `upcxx_debug_probe{rank="4"} 11`) {
		t.Fatalf("child metrics not served:\n%s", metrics)
	}

	ranks := get(t, srv, "/debug/ranks")
	var rdoc struct {
		Children map[string]string `json:"children"`
		Health   struct {
			Ranks int               `json:"ranks"`
			Dead  map[string]string `json:"dead"`
		} `json:"health"`
	}
	if err := json.Unmarshal([]byte(ranks), &rdoc); err != nil {
		t.Fatalf("/debug/ranks not JSON: %v\n%s", err, ranks)
	}
	if rdoc.Children["4"] != "up" {
		t.Fatalf("child 4 not reported up: %s", ranks)
	}
	if rdoc.Health.Ranks != 2 || rdoc.Health.Dead["1"] != "heartbeat timeout" {
		t.Fatalf("health not propagated: %s", ranks)
	}

	trace := get(t, srv, "/debug/trace")
	sum, err := ValidateTrace([]byte(trace))
	if err != nil {
		t.Fatalf("/debug/trace invalid: %v\n%s", err, trace)
	}
	if sum.Events != 1 || sum.Tids[4] != 1 {
		t.Fatalf("trace snapshot wrong: %+v", sum)
	}
}

// TestDebugLocalFallback: with no children advertised, the handler
// serves this process's own state.
func TestDebugLocalFallback(t *testing.T) {
	t.Cleanup(Reset)
	Reg().reset()
	Reg().NewCounter("upcxx_local_probe", 0).Inc()
	InitHealth(1)

	srv := httptest.NewServer(NewDebugHandler(""))
	defer srv.Close()

	if m := get(t, srv, "/debug/metrics"); !strings.Contains(m, `upcxx_local_probe{rank="0"} 1`) {
		t.Fatalf("local metrics not served:\n%s", m)
	}
	if r := get(t, srv, "/debug/ranks"); !strings.Contains(r, `"alive":[0]`) {
		t.Fatalf("local health not served: %s", r)
	}
}
