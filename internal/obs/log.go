package obs

import (
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
)

// verbosity is the leveled-logging gate. 0 (default) is silent; 1
// logs lifecycle events (connects, deaths, flush decisions); 2+ is
// chatty. Set by upcxx-run's -v flag or the UPCXX_VERBOSE env var.
var verbosity atomic.Int32

func init() {
	if s := os.Getenv("UPCXX_VERBOSE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			verbosity.Store(int32(n))
		}
	}
}

// SetVerbosity sets the logging level.
func SetVerbosity(v int) { verbosity.Store(int32(v)) }

// Verbosity returns the current logging level.
func Verbosity() int { return int(verbosity.Load()) }

// logOut is swappable for tests asserting silence.
var logOut atomic.Pointer[os.File]

func logDest() *os.File {
	if f := logOut.Load(); f != nil {
		return f
	}
	return os.Stderr
}

// SetLogOutput redirects Logf (tests). Pass nil to restore stderr.
func SetLogOutput(f *os.File) { logOut.Store(f) }

// Logf writes one rank-prefixed log line if the current verbosity is
// at least level. The disabled path is one atomic load.
func Logf(level, rank int, format string, args ...any) {
	if int(verbosity.Load()) < level {
		return
	}
	fmt.Fprintf(logDest(), "[upcxx %d] %s\n", rank, fmt.Sprintf(format, args...))
}
