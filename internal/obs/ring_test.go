package obs

import (
	"fmt"
	"sync"
	"testing"
)

func withTracing(t *testing.T) {
	t.Helper()
	SetTracing(true)
	t.Cleanup(func() {
		SetTracing(false)
		Reset()
	})
}

func TestRingBasic(t *testing.T) {
	withTracing(t)
	r := NewRing(3, 64)
	r.Begin(KRPCExec, 5, 128)
	r.Instant(KAggFlush, -1, 4096, FlushMaxBytes)
	r.End(KRPCExec)

	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Ev != evBegin || evs[0].Kind != KRPCExec || evs[0].Peer != 5 || evs[0].Bytes != 128 {
		t.Fatalf("bad begin record: %+v", evs[0])
	}
	if evs[1].Ev != evInstant || evs[1].Kind != KAggFlush || evs[1].Arg != FlushMaxBytes || evs[1].Peer != -1 {
		t.Fatalf("bad instant record: %+v", evs[1])
	}
	if evs[2].Ev != evEnd || evs[2].Kind != KRPCExec {
		t.Fatalf("bad end record: %+v", evs[2])
	}
	if evs[0].TNs > evs[1].TNs || evs[1].TNs > evs[2].TNs {
		t.Fatalf("timestamps not monotonic: %d %d %d", evs[0].TNs, evs[1].TNs, evs[2].TNs)
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", r.Dropped())
	}
}

func TestRingNilSafe(t *testing.T) {
	var r *Ring
	r.Begin(KRPCExec, 0, 0)
	r.End(KRPCExec)
	r.Instant(KPing, 0, 0, 0)
	if r.Snapshot() != nil || r.Dropped() != 0 || r.Cap() != 0 || r.Written() != 0 {
		t.Fatal("nil ring should be inert")
	}
}

// TestRingWraparoundConcurrent hammers a tiny ring from many writers
// while snapshotting concurrently: the claim counter must account for
// every record (exact drop count), and no snapshot may contain a torn
// record. Run under -race this also proves the seqlock protocol.
func TestRingWraparoundConcurrent(t *testing.T) {
	withTracing(t)
	const (
		capacity = 256
		writers  = 8
		perW     = 5000
	)
	r := NewRing(0, capacity)

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	readerErr := make(chan error, 1)
	readerWG.Add(1)
	go func() { // concurrent reader
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := checkSnapshot(r); err != nil {
				select {
				case readerErr <- err:
				default:
				}
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perW; i++ {
				switch i % 3 {
				case 0:
					r.Begin(KTaskExec, int32(w), uint32(i))
				case 1:
					r.End(KTaskExec)
				default:
					r.Instant(KWireTx, int32(w), uint32(i), uint64(i))
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	select {
	case err := <-readerErr:
		t.Fatalf("concurrent snapshot: %v", err)
	default:
	}

	total := uint64(writers * perW)
	if got := r.Written(); got != total {
		t.Fatalf("written = %d, want %d", got, total)
	}
	if got, want := r.Dropped(), total-capacity; got != want {
		t.Fatalf("dropped = %d, want %d", got, want)
	}
	evs, err := checkSnapshot(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != capacity {
		t.Fatalf("quiescent snapshot has %d events, want %d", len(evs), capacity)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not in claim order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// checkSnapshot decodes the ring and verifies every record is sane
// (untorn): known kind, known phase, seq within the live window.
func checkSnapshot(r *Ring) ([]Event, error) {
	evs := r.Snapshot()
	for _, e := range evs {
		if e.Kind != KTaskExec && e.Kind != KWireTx {
			return nil, fmt.Errorf("torn record: unexpected kind %d in %+v", e.Kind, e)
		}
		if e.Ev < evBegin || e.Ev > evInstant {
			return nil, fmt.Errorf("torn record: bad phase in %+v", e)
		}
		if e.Ev == evInstant && e.Kind != KWireTx {
			return nil, fmt.Errorf("torn record: instant with kind %d", e.Kind)
		}
		if pos := r.Written(); e.Seq >= pos {
			return nil, fmt.Errorf("record seq %d beyond claim counter %d", e.Seq, pos)
		}
	}
	return evs, nil
}

// TestDisabledTracingOverhead is the gate the ISSUE demands: with
// tracing off, a call site (nil ring or live ring) must not allocate.
func TestDisabledTracingOverhead(t *testing.T) {
	SetTracing(false)
	var nilRing *Ring
	live := NewRing(0, 64)

	if n := testing.AllocsPerRun(1000, func() {
		nilRing.Begin(KRPCExec, 1, 2)
		nilRing.End(KRPCExec)
		nilRing.Instant(KWireTx, 1, 2, 3)
	}); n != 0 {
		t.Fatalf("nil-ring disabled path allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		live.Begin(KRPCExec, 1, 2)
		live.End(KRPCExec)
		live.Instant(KWireTx, 1, 2, 3)
	}); n != 0 {
		t.Fatalf("gated disabled path allocates %v per run, want 0", n)
	}
	if live.Written() != 0 {
		t.Fatal("disabled call sites must not record")
	}
}

// BenchmarkDisabledSpan measures the disabled fast path: target is a
// couple of ns per call site (one branch + one atomic load).
func BenchmarkDisabledSpan(b *testing.B) {
	SetTracing(false)
	r := NewRing(0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Instant(KWireTx, 1, 2, 3)
	}
}

// BenchmarkEnabledSpan is the enabled cost for comparison.
func BenchmarkEnabledSpan(b *testing.B) {
	SetTracing(true)
	defer SetTracing(false)
	r := NewRing(0, 1<<12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Instant(KWireTx, 1, 2, 3)
	}
}
