package obs

import (
	"strings"
	"testing"
)

func TestRegistryCountersAndSnapshot(t *testing.T) {
	t.Cleanup(Reset)
	Reg().reset()

	c := Reg().NewCounter("upcxx_rpc_total", 0)
	c.Add(41)
	c.Inc()
	g := Reg().NewGauge("upcxx_pending_ops", 1)
	g.Set(7)
	g.Add(-2)
	h := Reg().NewHistogram("upcxx_rpc_rtt_ns", 0)
	h.Observe(1)
	h.Observe(1000)
	h.Observe(1_000_000)
	remove := Reg().AddSource(2, func() map[string]int64 {
		return map[string]int64{"wire_tx_frames": 9}
	})
	defer remove()

	snap := Reg().Snapshot()
	if snap["upcxx_rpc_total{rank=0}"] != 42 {
		t.Fatalf("counter snapshot = %d, want 42", snap["upcxx_rpc_total{rank=0}"])
	}
	if snap["upcxx_pending_ops{rank=1}"] != 5 {
		t.Fatalf("gauge snapshot = %d, want 5", snap["upcxx_pending_ops{rank=1}"])
	}
	if snap["upcxx_rpc_rtt_ns_count{rank=0}"] != 3 || snap["upcxx_rpc_rtt_ns_sum{rank=0}"] != 1_001_001 {
		t.Fatalf("histogram snapshot wrong: %v", snap)
	}
	if snap["wire_tx_frames{rank=2}"] != 9 {
		t.Fatalf("source snapshot = %d, want 9", snap["wire_tx_frames{rank=2}"])
	}
}

func TestRegistryIdempotentCreate(t *testing.T) {
	t.Cleanup(Reset)
	Reg().reset()
	a := Reg().NewCounter("x", 3)
	b := Reg().NewCounter("x", 3)
	if a != b {
		t.Fatal("same name+rank must return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared counter not shared")
	}
}

func TestPrometheusRender(t *testing.T) {
	t.Cleanup(Reset)
	Reg().reset()

	Reg().NewCounter("upcxx_flushes_total", 0).Add(3)
	Reg().NewCounter("upcxx_flushes_total", 1).Add(5)
	h := Reg().NewHistogram("upcxx_flush_bytes", 0)
	h.Observe(100)
	h.Observe(5000)

	text := Reg().Prometheus()
	for _, want := range []string{
		"# TYPE upcxx_flushes_total counter",
		`upcxx_flushes_total{rank="0"} 3`,
		`upcxx_flushes_total{rank="1"} 5`,
		"# TYPE upcxx_flush_bytes histogram",
		`upcxx_flush_bytes_bucket{rank="0",le="+Inf"} 2`,
		`upcxx_flush_bytes_sum{rank="0"} 5100`,
		`upcxx_flush_bytes_count{rank="0"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Prometheus output missing %q:\n%s", want, text)
		}
	}
	// Rank samples of one family must sort under one TYPE header.
	if strings.Count(text, "# TYPE upcxx_flushes_total") != 1 {
		t.Fatalf("duplicate TYPE headers:\n%s", text)
	}
}

func TestHistogramBuckets(t *testing.T) {
	t.Cleanup(Reset)
	Reg().reset()
	h := Reg().NewHistogram("b", 0)
	// 1 -> bucket 0 (<=1); 2 -> bucket 1 (<=2); 3 -> bucket 2 (<=4).
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(0)
	if got := h.buckets[0].Load(); got != 2 { // 0 and 1
		t.Fatalf("bucket0 = %d, want 2", got)
	}
	if got := h.buckets[1].Load(); got != 1 {
		t.Fatalf("bucket1 = %d, want 1", got)
	}
	if got := h.buckets[2].Load(); got != 1 {
		t.Fatalf("bucket2 = %d, want 1", got)
	}
}

func TestNilMetricsSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must be inert")
	}
}
