package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

func TestRingTraceEventsPairing(t *testing.T) {
	withTracing(t)
	r := NewRing(1, 64)
	r.SetPid(2)
	r.Begin(KFinish, -1, 0)
	r.Begin(KRPCExec, 4, 32)
	r.Instant(KAggFlush, -1, 512, FlushMaxOps)
	r.End(KRPCExec)
	r.End(KFinish)
	r.Begin(KEvWait, -1, 0) // left open: must be closed at dump time

	evs := RingTraceEvents(r)
	if len(evs) != 4 {
		t.Fatalf("got %d trace events, want 4: %+v", len(evs), evs)
	}
	byName := map[string]TraceEvent{}
	for _, e := range evs {
		byName[e.Name] = e
		if e.Pid != 2 || e.Tid != 1 {
			t.Fatalf("bad pid/tid: %+v", e)
		}
	}
	fin, rpc := byName["finish"], byName["rpc.exec"]
	if fin.Ph != "X" || rpc.Ph != "X" {
		t.Fatalf("spans must be complete events: %+v %+v", fin, rpc)
	}
	if rpc.Ts < fin.Ts || rpc.Ts+rpc.Dur > fin.Ts+fin.Dur+0.002 {
		t.Fatalf("rpc span not nested in finish span: %+v in %+v", rpc, fin)
	}
	if rpc.Args["peer"] != int32(4) || rpc.Args["bytes"] != uint32(32) {
		t.Fatalf("span args lost: %+v", rpc.Args)
	}
	if byName["agg.flush"].Args["reason"] != "MaxOps" {
		t.Fatalf("flush reason not decoded: %+v", byName["agg.flush"])
	}
	if byName["event.wait"].Ph != "X" {
		t.Fatalf("unclosed begin not closed: %+v", byName["event.wait"])
	}
}

func TestOrphanEndDropped(t *testing.T) {
	withTracing(t)
	r := NewRing(0, 64)
	r.End(KRPCExec) // no matching begin (as after wraparound)
	r.Instant(KPing, 1, 0, 0)
	evs := RingTraceEvents(r)
	if len(evs) != 1 || evs[0].Name != "wire.ping" {
		t.Fatalf("orphan end must be dropped, got %+v", evs)
	}
}

func TestDumpMergeValidate(t *testing.T) {
	withTracing(t)
	dir := t.TempDir()

	// Two "processes": write two per-rank files with distinct rings.
	r0 := RingFor(0)
	r0.Begin(KBarrier, -1, 0)
	r0.Instant(KWireTx, 1, 64, 2)
	r0.End(KBarrier)
	if err := DumpTraceFile(dir, 0); err != nil {
		t.Fatal(err)
	}

	Reset()
	SetTracing(true)
	r1 := RingFor(1)
	r1.Instant(KShmRx, 0, 128, 0)
	r1.Begin(KAggApply, 0, 256)
	r1.End(KAggApply)
	if err := DumpTraceFile(dir, 1); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "trace.json")
	n, err := MergeTraceDir(dir, out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("merged %d events, want 4", n)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateTrace(data)
	if err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	if sum.Events != 4 || sum.Tids[0] != 2 || sum.Tids[1] != 2 {
		t.Fatalf("unexpected summary: %+v", sum)
	}
	for _, cat := range []string{"core", "wire", "shm", "agg"} {
		if sum.Categories[cat] == 0 {
			t.Fatalf("category %s missing: %+v", cat, sum.Categories)
		}
	}
}

func TestMergeClockAlignment(t *testing.T) {
	// Two parts whose epochs differ by 1ms: after merging, the later
	// process's events must shift forward by 1000us.
	base := time.Now().UnixNano()
	mk := func(epochNs int64, ts float64) TraceFile {
		return TraceFile{
			TraceEvents: []TraceEvent{{Name: "e", Cat: "core", Ph: "i", Ts: ts, Tid: 0}},
			OtherData:   map[string]string{"epochNs": strconv.FormatInt(epochNs, 10)},
		}
	}
	merged := mergeTraceFiles([]TraceFile{mk(base, 10), mk(base+1_000_000, 10)})
	if len(merged.TraceEvents) != 2 {
		t.Fatalf("got %d events", len(merged.TraceEvents))
	}
	if merged.TraceEvents[0].Ts != 10 || merged.TraceEvents[1].Ts != 1010 {
		t.Fatalf("clock alignment wrong: %v %v", merged.TraceEvents[0].Ts, merged.TraceEvents[1].Ts)
	}
}

func TestValidateTraceRejectsGarbage(t *testing.T) {
	if _, err := ValidateTrace([]byte("{not json")); err == nil {
		t.Fatal("garbage must not validate")
	}
	bad, _ := json.Marshal(TraceFile{TraceEvents: []TraceEvent{{Name: "x", Ph: "X", Dur: -1}}})
	if _, err := ValidateTrace(bad); err == nil {
		t.Fatal("negative dur must not validate")
	}
	var buf bytes.Buffer
	buf.WriteString(`{"traceEvents":[{"name":"","ph":"i"}]}`)
	if _, err := ValidateTrace(buf.Bytes()); err == nil {
		t.Fatal("empty name must not validate")
	}
}
