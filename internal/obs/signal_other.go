//go:build !unix

package obs

// InstallTraceSignal is a no-op where SIGUSR1 does not exist.
func InstallTraceSignal(dir string, rank int) func() { return func() {} }
