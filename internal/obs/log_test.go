package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureLog redirects Logf into a temp file and returns a reader.
func captureLog(t *testing.T) func() string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	SetLogOutput(f)
	t.Cleanup(func() {
		SetLogOutput(nil)
		f.Close()
	})
	return func() string {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
}

func TestLogfDefaultSilent(t *testing.T) {
	SetVerbosity(0)
	read := captureLog(t)
	Logf(1, 0, "connect to %s", "peer")
	Logf(2, 3, "chatty detail")
	if got := read(); got != "" {
		t.Fatalf("default verbosity must be silent, got %q", got)
	}
}

func TestLogfRankPrefixed(t *testing.T) {
	SetVerbosity(1)
	t.Cleanup(func() { SetVerbosity(0) })
	read := captureLog(t)
	Logf(1, 7, "peer %d down", 3)
	Logf(2, 7, "suppressed at level 2")
	got := read()
	if !strings.Contains(got, "[upcxx 7] peer 3 down") {
		t.Fatalf("missing rank-prefixed line, got %q", got)
	}
	if strings.Contains(got, "suppressed") {
		t.Fatalf("level-2 line leaked at verbosity 1: %q", got)
	}
}

func TestVerbosityFromEnvFormat(t *testing.T) {
	// init() parses UPCXX_VERBOSE; we can't re-run init, but the
	// setter/getter pair must round-trip what it would store.
	SetVerbosity(2)
	if Verbosity() != 2 {
		t.Fatal("verbosity round-trip failed")
	}
	SetVerbosity(0)
}
