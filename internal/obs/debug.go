package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The debug plane has two halves. Each child rank process runs a tiny
// TCP state server (StartStateServer) answering one-line queries —
// "metrics", "trace", "ranks" — and advertises its address via an
// .addr file in a directory the launcher owns. The launcher serves
// HTTP (NewDebugHandler): /debug/metrics, /debug/trace and
// /debug/ranks fan the query out to every advertised child, merge,
// and render; /debug/pprof profiles the launcher itself. With no
// children advertised (in-process runs) the handler falls back to
// this process's own registry/rings.

// StartStateServer listens on a loopback port, writes the address to
// dir/debug-rank<R>.addr, and answers state queries until stop is
// called. R is the lowest world rank hosted by this process.
func StartStateServer(dir string, rank int) (stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addrPath := filepath.Join(dir, fmt.Sprintf("debug-rank%03d.addr", rank))
	if err := os.WriteFile(addrPath, []byte(ln.Addr().String()), 0o644); err != nil {
		ln.Close()
		return nil, err
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go serveStateConn(c)
		}
	}()
	return func() {
		ln.Close()
		os.Remove(addrPath)
	}, nil
}

func serveStateConn(c net.Conn) {
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		return
	}
	switch strings.TrimSpace(line) {
	case "metrics":
		io.WriteString(c, Reg().Prometheus())
	case "trace":
		WriteProcessTrace(c)
	case "ranks":
		io.WriteString(c, HealthJSON())
	}
}

// queryState asks one child state server for a document.
func queryState(addr, cmd string) ([]byte, error) {
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.WriteString(c, cmd+"\n"); err != nil {
		return nil, err
	}
	return io.ReadAll(c)
}

// childAddrs lists the advertised child state servers as rank->addr.
func childAddrs(stateDir string) map[int]string {
	out := map[int]string{}
	if stateDir == "" {
		return out
	}
	paths, _ := filepath.Glob(filepath.Join(stateDir, "debug-rank*.addr"))
	for _, p := range paths {
		base := filepath.Base(p)
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(base, "debug-rank"), ".addr"))
		if err != nil {
			continue
		}
		if b, err := os.ReadFile(p); err == nil {
			out[n] = strings.TrimSpace(string(b))
		}
	}
	return out
}

func sortedRanks(m map[int]string) []int {
	rs := make([]int, 0, len(m))
	for r := range m {
		rs = append(rs, r)
	}
	sort.Ints(rs)
	return rs
}

// NewDebugHandler builds the launcher-side debug mux. stateDir is
// where children advertise their state servers; empty (or no .addr
// files yet) serves this process's own state.
func NewDebugHandler(stateDir string) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		addrs := childAddrs(stateDir)
		if len(addrs) == 0 {
			io.WriteString(w, Reg().Prometheus())
			return
		}
		for _, r := range sortedRanks(addrs) {
			body, err := queryState(addrs[r], "metrics")
			if err != nil {
				fmt.Fprintf(w, "# rank %d unreachable: %v\n", r, err)
				continue
			}
			w.Write(body)
		}
	})

	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		addrs := childAddrs(stateDir)
		if len(addrs) == 0 {
			WriteProcessTrace(w)
			return
		}
		var parts []TraceFile
		for _, r := range sortedRanks(addrs) {
			body, err := queryState(addrs[r], "trace")
			if err != nil {
				continue
			}
			var tf TraceFile
			if json.Unmarshal(body, &tf) == nil {
				parts = append(parts, tf)
			}
		}
		merged := mergeTraceFiles(parts)
		json.NewEncoder(w).Encode(&merged)
	})

	mux.HandleFunc("/debug/ranks", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		addrs := childAddrs(stateDir)
		if len(addrs) == 0 {
			io.WriteString(w, HealthJSON())
			return
		}
		var health []byte
		reach := map[int]bool{}
		for _, r := range sortedRanks(addrs) {
			body, err := queryState(addrs[r], "ranks")
			reach[r] = err == nil
			if err == nil && health == nil {
				health = bytes.TrimSpace(body)
			}
		}
		var b strings.Builder
		b.WriteString("{\"children\":{")
		for i, r := range sortedRanks(addrs) {
			if i > 0 {
				b.WriteByte(',')
			}
			status := "up"
			if !reach[r] {
				status = "unreachable"
			}
			fmt.Fprintf(&b, "\"%d\":%q", r, status)
		}
		b.WriteString("},\"health\":")
		if health == nil {
			health = []byte("null")
		}
		b.Write(health)
		b.WriteString("}")
		io.WriteString(w, b.String())
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// ServeDebug starts the launcher debug HTTP server on addr and
// returns the bound address (addr may use port 0) and a stop func.
func ServeDebug(addr, stateDir string) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewDebugHandler(stateDir)}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
