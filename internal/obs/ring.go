package obs

import "sync/atomic"

// Kind identifies what a span or instant event measures. Kinds map to
// trace-event names and categories (subsystems) in kindInfo below.
type Kind uint8

const (
	KInvalid Kind = iota

	// core: task dispatch/execution, futures, finish, event waits.
	KTaskDispatch // instant: closure async shipped to a rank
	KTaskExec     // span: a task body running on its target
	KRPCDispatch  // instant: registered task shipped over the wire
	KRPCExec      // span: a registered task body executing
	KFutResolve   // instant: a future settled
	KFutThen      // span: a continuation hop running
	KFinish       // span: a Finish block, enter to fully drained
	KFinishDrain  // instant: Finish body done, drain wait begins
	KEvWait       // span: a blocked Event.Wait / progress wait
	KBarrier      // span: a team/world barrier

	// agg: the message-aggregation layer.
	KAggOp    // instant: one op buffered into a destination batch
	KAggFlush // instant: a batch shipped; arg = flush reason
	KAggApply // span: an incoming batch decoded and applied

	// wire: the framed-TCP conduit.
	KWireTx // instant: frame sent; arg = handler index
	KWireRx // instant: frame dispatched; arg = handler index
	KPing   // instant: heartbeat probe sent
	KDeath  // instant: a peer declared dead

	// shm: the intra-host shared-memory conduit.
	KShmTx // instant: AM pushed into a peer's ring
	KShmRx // instant: AM popped from a ring

	// hier: the two-level conduit's collective phases.
	KHierLocal  // span: shm arrive/gather phase at a leader
	KHierLeader // span: leader-plane dissemination / tree phase
	KHierRel    // span: leader releasing its local ranks

	// net: the transport under everything.
	KNetFlush // instant: write buffers flushed; bytes = frames shipped
	KNetWait  // span: blocked in the transport inbox wait

	kindCount // sentinel
)

// kindInfo names each kind and assigns its subsystem category.
var kindInfo = [kindCount]struct{ name, cat string }{
	KInvalid:      {"invalid", "?"},
	KTaskDispatch: {"task.dispatch", "core"},
	KTaskExec:     {"task.exec", "core"},
	KRPCDispatch:  {"rpc.dispatch", "core"},
	KRPCExec:      {"rpc.exec", "core"},
	KFutResolve:   {"future.resolve", "core"},
	KFutThen:      {"future.then", "core"},
	KFinish:       {"finish", "core"},
	KFinishDrain:  {"finish.drain", "core"},
	KEvWait:       {"event.wait", "core"},
	KBarrier:      {"barrier", "core"},
	KAggOp:        {"agg.op", "agg"},
	KAggFlush:     {"agg.flush", "agg"},
	KAggApply:     {"agg.apply", "agg"},
	KWireTx:       {"wire.tx", "wire"},
	KWireRx:       {"wire.rx", "wire"},
	KPing:         {"wire.ping", "wire"},
	KDeath:        {"wire.death", "wire"},
	KShmTx:        {"shm.tx", "shm"},
	KShmRx:        {"shm.rx", "shm"},
	KHierLocal:    {"hier.local", "hier"},
	KHierLeader:   {"hier.leader", "hier"},
	KHierRel:      {"hier.release", "hier"},
	KNetFlush:     {"net.flush", "net"},
	KNetWait:      {"net.wait", "net"},
}

// Name returns the kind's trace-event name.
func (k Kind) Name() string {
	if int(k) < len(kindInfo) {
		return kindInfo[k].name
	}
	return "unknown"
}

// Category returns the kind's subsystem.
func (k Kind) Category() string {
	if int(k) < len(kindInfo) {
		return kindInfo[k].cat
	}
	return "?"
}

// Event phases within the ring.
const (
	evBegin   = 1
	evEnd     = 2
	evInstant = 3
)

// Event is one decoded ring record.
type Event struct {
	Seq   uint64 // global claim order within the ring
	TNs   uint64 // nanoseconds since the process obs epoch
	Ev    uint8  // evBegin / evEnd / evInstant
	Kind  Kind
	Peer  int32 // peer rank, -1 when not applicable
	Bytes uint32
	Arg   uint64 // kind-specific (handler index, flush reason, ...)
}

// recWords is the ring slot width: 4 x 8 bytes = 32 bytes per record.
const recWords = 4

// Ring is one rank's fixed-size lock-free trace ring. Writers claim a
// slot with one atomic add and commit it seqlock-style: word 0 is
// zeroed, words 1..3 written, then word 0 stored last with the claim
// sequence embedded — so a concurrent Snapshot either sees a fully
// committed record or skips the slot. Old records are overwritten in
// claim order; Dropped derives the overwrite count from the claim
// counter, so accounting is exact under any number of writers.
//
// All methods are safe on a nil ring (no-ops), which is the disabled
// fast path: components capture their ring once, and when tracing is
// off the pointer is nil.
type Ring struct {
	rank  int
	pid   int // host index for trace export (SetPid)
	mask  uint64
	slots []atomic.Uint64
	pos   atomic.Uint64 // next claim sequence
}

// NewRing builds a ring of at least capacity records (rounded up to a
// power of two) for the given rank.
func NewRing(rank, capacity int) *Ring {
	n := uint64(1)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &Ring{rank: rank, mask: n - 1, slots: make([]atomic.Uint64, n*recWords)}
}

// SetPid tags the ring with its host index; the Chrome trace exporter
// uses it as the pid so co-located ranks group under one process row.
func (r *Ring) SetPid(host int) {
	if r != nil {
		r.pid = host
	}
}

// Rank returns the ring's rank (0 for a nil ring).
func (r *Ring) Rank() int {
	if r == nil {
		return 0
	}
	return r.rank
}

// Cap returns the ring capacity in records.
func (r *Ring) Cap() uint64 {
	if r == nil {
		return 0
	}
	return r.mask + 1
}

// Written returns how many records have ever been claimed.
func (r *Ring) Written() uint64 {
	if r == nil {
		return 0
	}
	return r.pos.Load()
}

// Dropped returns how many records have been overwritten (lost to
// wraparound): everything claimed beyond one full capacity.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	if n := r.pos.Load(); n > r.mask+1 {
		return n - (r.mask + 1)
	}
	return 0
}

// record claims a slot and commits one record. The commit word packs
// (seq+1)<<16 | kind<<8 | ev, so a reader can verify both that the
// slot holds the generation it expects and that the write finished.
func (r *Ring) record(ev uint8, k Kind, peer int32, bytes uint32, arg uint64) {
	if r == nil || !tracing.Load() {
		return
	}
	t := nowNs()
	s := r.pos.Add(1) - 1
	i := (s & r.mask) * recWords
	r.slots[i].Store(0) // invalidate while the data words change
	r.slots[i+1].Store(t)
	r.slots[i+2].Store(uint64(uint32(peer))<<32 | uint64(bytes))
	r.slots[i+3].Store(arg)
	r.slots[i].Store((s+1)<<16 | uint64(k)<<8 | uint64(ev))
}

// Begin opens a span of the given kind. Pair with End; spans must nest
// per goroutine (the exporter pairs them stack-wise per ring).
func (r *Ring) Begin(k Kind, peer int32, bytes uint32) { r.record(evBegin, k, peer, bytes, 0) }

// End closes the innermost open span of the given kind.
func (r *Ring) End(k Kind) { r.record(evEnd, k, -1, 0, 0) }

// Instant records a point event.
func (r *Ring) Instant(k Kind, peer int32, bytes uint32, arg uint64) {
	r.record(evInstant, k, peer, bytes, arg)
}

// Snapshot decodes the currently resident records in claim order. It
// is safe concurrently with writers: a slot mid-overwrite is skipped
// (its commit word does not match the expected generation before and
// after the data reads), so the result may miss the newest few records
// but never contains a torn one.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	end := r.pos.Load()
	capn := r.mask + 1
	start := uint64(0)
	if end > capn {
		start = end - capn
	}
	out := make([]Event, 0, end-start)
	for s := start; s < end; s++ {
		i := (s & r.mask) * recWords
		w0 := r.slots[i].Load()
		if w0>>16 != s+1 {
			continue // overwritten past us, or not yet committed
		}
		t := r.slots[i+1].Load()
		pb := r.slots[i+2].Load()
		arg := r.slots[i+3].Load()
		if r.slots[i].Load() != w0 {
			continue // overwritten while we read the data words
		}
		out = append(out, Event{
			Seq:   s,
			TNs:   t,
			Ev:    uint8(w0 & 0xFF),
			Kind:  Kind((w0 >> 8) & 0xFF),
			Peer:  int32(uint32(pb >> 32)),
			Bytes: uint32(pb),
			Arg:   arg,
		})
	}
	return out
}
