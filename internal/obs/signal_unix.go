//go:build unix

package obs

import (
	"os"
	"os/signal"
	"syscall"
)

// InstallTraceSignal makes SIGUSR1 dump this process's trace to dir
// (same file DumpTraceFile writes at exit), so a stuck run can be
// inspected without killing it. Returns an uninstall func.
func InstallTraceSignal(dir string, rank int) func() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGUSR1)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				if err := DumpTraceFile(dir, rank); err != nil {
					Logf(1, rank, "trace dump failed: %v", err)
				} else {
					Logf(1, rank, "trace dumped to %s", dir)
				}
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
