module upcxx

go 1.23
