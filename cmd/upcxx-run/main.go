// Command upcxx-run launches a registered SPMD program (internal/spmd)
// over a chosen conduit backend — the analog of the upcxx-run launcher
// that real UPC++ installations wrap around GASNet's conduit spawners:
//
//	upcxx-run -n 4 gups                 # in-process backend (goroutine ranks)
//	upcxx-run -n 4 -backend tcp gups    # wire backend: 4 OS processes over localhost TCP
//	upcxx-run -n 4 -backend tcp dht     # aggregated-AM distributed hash table
//	upcxx-run -list                     # registered programs (also shown on a missing name)
//
// With -backend tcp the command re-executes itself once per rank; the
// children listen for active messages on private TCP ports, rendezvous
// with the parent to exchange addresses, connect a full mesh, and run
// the program over the wire conduit. Rank 0 prints one line:
//
//	<prog> ranks=<n> scale=<s> checksum=<hex>
//
// The line is backend-independent — the same program at the same size
// must produce the same checksum on both backends — which is what the
// CI smoke job asserts.
//
// Chaos mode injects a fault plan (internal/fault) into the job:
//
//	upcxx-run -n 4 -backend tcp -chaos "kill:rank=2,at=500ms" dhtchaos
//
// Transport rules (drop/delay/sever) act inside each rank's transport;
// kill rules hard-exit the doomed wire rank (exit code 3, which the
// parent treats as scripted) or mark it dead in-process. The reporting
// rank is the lowest rank the plan does not kill, so a chaos run still
// prints the one checksum line CI compares against the fault-free run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"

	"upcxx/internal/core"
	"upcxx/internal/fault"
	"upcxx/internal/obs"
	"upcxx/internal/spmd"
	_ "upcxx/internal/svc" // registers the gateserve program
)

// Children find their identity and the parent's rendezvous address in
// these environment variables.
const (
	envRank       = "UPCXX_RUN_RANK"
	envRanks      = "UPCXX_RUN_RANKS"
	envRendezvous = "UPCXX_RUN_RENDEZVOUS"
	envPPN        = "UPCXX_RUN_PPN"      // procs per node; >0 selects the hier conduit
	envShmDir     = "UPCXX_RUN_SHMDIR"   // job-wide shm segment directory (parent-owned)
	envTraceDir   = "UPCXX_RUN_TRACEDIR" // per-rank Chrome trace dump directory (-trace)
	envDebugDir   = "UPCXX_RUN_DEBUGDIR" // per-rank debug state-server directory (-debug-addr)
)

func main() {
	n := flag.Int("n", 4, "SPMD ranks")
	backend := flag.String("backend", "proc", "conduit backend: proc (in-process), tcp (one OS process per rank) or hier (processes sharing mmap'd segments per virtual host)")
	ppn := flag.Int("procs-per-node", 0, "ranks per virtual host (0 = backend default: 1, or n for -backend hier); >1 with tcp upgrades to hier")
	scale := flag.Int("scale", 0, "program size knob (0 = program default)")
	rdvTimeout := flag.Duration("rendezvous-timeout", spmd.RendezvousTimeout,
		"deadline for the tcp backend's address rendezvous (raise for slow or congested hosts)")
	chaos := flag.String("chaos", "", `fault plan, e.g. "kill:rank=2,at=500ms" or "drop:rank=0,peer=1,op=3" (see internal/fault)`)
	gateway := flag.String("gateway", "", "launch an upcxx-gate HTTP front door on this address as rank n of the job (tcp backend, gateway program); SIGTERM to the launcher drains it gracefully")
	traceDir := flag.String("trace", "", "enable runtime tracing; per-rank Chrome trace dumps land in this directory, merged into <dir>/trace.json on exit (open in Perfetto)")
	debugAddr := flag.String("debug-addr", "", "serve the live debug endpoint (/debug/metrics, /debug/trace, /debug/ranks, pprof) on this address, e.g. 127.0.0.1:8090")
	verbose := flag.Int("v", 0, "runtime log verbosity, 0 = silent (UPCXX_VERBOSE sets the same level)")
	list := flag.Bool("list", false, "list registered programs")
	flag.Parse()

	if *verbose > 0 {
		obs.SetVerbosity(*verbose)
	}

	var plan *fault.Plan
	if *chaos != "" {
		var err error
		if plan, err = fault.Parse(*chaos); err != nil {
			fmt.Fprintln(os.Stderr, "upcxx-run: -chaos:", err)
			os.Exit(2)
		}
	}

	// Children inherit the flag through re-execution of os.Args, so the
	// whole job — parent accept loop and every child's dial — shares one
	// deadline.
	if *rdvTimeout <= 0 {
		fmt.Fprintln(os.Stderr, "upcxx-run: -rendezvous-timeout must be positive")
		os.Exit(2)
	}
	spmd.RendezvousTimeout = *rdvTimeout

	if *list {
		listPrograms(os.Stdout)
		return
	}
	// A missing or unknown program name prints the registry instead of
	// a bare error, so `upcxx-run` with no arguments is self-documenting.
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: upcxx-run [-n ranks] [-backend proc|tcp] [-scale k] <prog>")
		fmt.Fprintln(os.Stderr, "registered programs:")
		listPrograms(os.Stderr)
		os.Exit(2)
	}
	prog, ok := spmd.Lookup(flag.Arg(0))
	if !ok {
		fmt.Fprintf(os.Stderr, "upcxx-run: unknown program %q; registered programs:\n", flag.Arg(0))
		listPrograms(os.Stderr)
		os.Exit(2)
	}
	if *scale == 0 {
		*scale = prog.DefaultScale
	}
	if *n < 1 {
		fmt.Fprintln(os.Stderr, "upcxx-run: -n must be >= 1")
		os.Exit(2)
	}

	// A gateway job is heterogeneous: n compute ranks running a gateway
	// program plus the upcxx-gate binary as rank n. The pieces only fit
	// together one way, so reject every other combination up front — in
	// particular a gateway program run standalone, which would park its
	// ranks forever waiting for a drain broadcast that never comes.
	if prog.Gateway && *gateway == "" {
		fmt.Fprintf(os.Stderr, "upcxx-run: program %q is the compute half of a gateway job and would hang standalone; launch it with -gateway <addr>\n", prog.Name)
		os.Exit(2)
	}
	if *gateway != "" {
		switch {
		case !prog.Gateway:
			fmt.Fprintf(os.Stderr, "upcxx-run: -gateway needs a gateway program (got %q); see -list\n", prog.Name)
			os.Exit(2)
		case *backend != "tcp" || *ppn > 1:
			fmt.Fprintln(os.Stderr, "upcxx-run: -gateway requires -backend tcp (the gateway is its own OS process joining the wire mesh)")
			os.Exit(2)
		case plan != nil:
			fmt.Fprintln(os.Stderr, "upcxx-run: -gateway does not combine with -chaos; the gatebench chaos experiment covers fault injection against a gateway")
			os.Exit(2)
		}
	}

	// Resolve the topology. The hier backend groups ranks onto virtual
	// hosts ppn at a time; tcp with ppn>1 is the same job, so it
	// upgrades, and a bare "-procs-per-node K" (no explicit -backend)
	// selects hier outright. An explicit "-backend proc" keeps the
	// in-process engine but labels ranks with the same topology, so
	// proc and hier runs of a locality-sensitive program compare
	// checksums. ppn is clamped to n: "-n 2 -procs-per-node 4" is a
	// one-host job, exactly as a real cluster launch would pack it.
	backendSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "backend" {
			backendSet = true
		}
	})
	if !backendSet && *ppn > 1 {
		*backend = "hier"
	}
	if *ppn == 0 {
		if *backend == "hier" {
			*ppn = *n
		} else {
			*ppn = 1
		}
	}
	if *ppn < 0 {
		fmt.Fprintln(os.Stderr, "upcxx-run: -procs-per-node must be >= 1")
		os.Exit(2)
	}
	if *ppn > *n {
		*ppn = *n
	}
	if *backend == "tcp" && *ppn > 1 {
		*backend = "hier"
	}

	if rankStr := os.Getenv(envRank); rankStr != "" {
		runChild(prog, *scale, rankStr, plan)
		return
	}

	switch *backend {
	case "proc":
		runProc(prog, *n, *scale, *ppn, plan, *traceDir, *debugAddr)
	case "tcp":
		runTCP(prog, *n, *scale, 0, plan, *traceDir, *debugAddr, *gateway)
	case "hier":
		runTCP(prog, *n, *scale, *ppn, plan, *traceDir, *debugAddr, "")
	default:
		fmt.Fprintf(os.Stderr, "upcxx-run: unknown backend %q (want proc, tcp or hier)\n", *backend)
		os.Exit(2)
	}
}

// listPrograms prints the spmd program registry, one line per program.
func listPrograms(w io.Writer) {
	for _, p := range spmd.Progs() {
		fmt.Fprintf(w, "%-8s (scale %d) %s\n", p.Name, p.DefaultScale, p.Desc)
	}
}

func report(prog spmd.Prog, n, scale int, sum uint64) {
	fmt.Printf("%s ranks=%d scale=%d checksum=%016x\n", prog.Name, n, scale, sum)
}

// reportRank is the rank whose checksum the launcher prints: the
// lowest one the plan does not kill (-1 if it kills them all).
func reportRank(n int, plan *fault.Plan) int {
	for r := 0; r < n; r++ {
		if !plan.KillsRank(r) {
			return r
		}
	}
	return -1
}

// runProc executes the program on the in-process backend: one goroutine
// per rank over the virtual-time engine, as upcxx.Run does. The ppn
// topology is passed through so LocalTeam membership matches what the
// same command line produces on the wire backends. All ranks live in
// this one process, so -trace dumps a single process trace holding
// every rank's ring and -debug-addr serves this process's own state.
func runProc(prog spmd.Prog, n, scale, ppn int, plan *fault.Plan, traceDir, debugAddr string) {
	obs.InitHealth(n)
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "upcxx-run: -trace:", err)
			os.Exit(1)
		}
		obs.SetTracing(true)
	}
	if debugAddr != "" {
		bound, stop, err := obs.ServeDebug(debugAddr, "")
		if err != nil {
			fmt.Fprintln(os.Stderr, "upcxx-run: -debug-addr:", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "upcxx-run: debug endpoint on http://%s/debug/\n", bound)
	}
	rep := reportRank(n, plan)
	var sum uint64
	core.Run(core.Config{
		Ranks:        n,
		SegmentBytes: prog.SegBytes(n, scale),
		Fault:        plan,
		Nodes:        spmd.HierNodes(n, ppn),
	}, func(me *core.Rank) {
		s := prog.Run(me, scale)
		if me.ID() == rep {
			sum = s
		}
	})
	if traceDir != "" {
		if err := obs.DumpTraceFile(traceDir, 0); err != nil {
			fmt.Fprintln(os.Stderr, "upcxx-run: trace dump:", err)
		}
		mergeTrace(traceDir)
	}
	if rep >= 0 {
		report(prog, n, scale, sum)
	}
}

// mergeTrace folds every per-process trace dump in dir into one
// clock-aligned dir/trace.json, ready for Perfetto / chrome://tracing.
func mergeTrace(dir string) {
	out := filepath.Join(dir, "trace.json")
	events, err := obs.MergeTraceDir(dir, out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upcxx-run: merging traces:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "upcxx-run: merged %d trace events into %s\n", events, out)
}

// runTCP is the parent side of the wire launch: spawn one child process
// per rank, serve the address rendezvous, and propagate failures. With
// ppn > 0 the job is hierarchical: the parent owns a temp directory of
// mmap'd segment files that co-located children share, and tells the
// children their topology through the environment.
//
// A non-empty gateway address grows the job by one rank: the upcxx-gate
// binary (expected beside this executable) joins the same rendezvous as
// rank n and serves HTTP on that address. The launcher then also
// forwards SIGTERM/SIGINT to the gateway so `kill -TERM <launcher>`
// drains the whole job gracefully, and it spawns every child in its own
// process group so a terminal interrupt reaches the job only through
// that forwarding path.
func runTCP(prog spmd.Prog, n, scale, ppn int, plan *fault.Plan, traceDir, debugAddr, gateway string) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "upcxx-run:", err)
		os.Exit(1)
	}
	defer ln.Close()

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "upcxx-run:", err)
		os.Exit(1)
	}
	var tmpDirs []string
	cleanup := func() {
		for _, d := range tmpDirs {
			os.RemoveAll(d)
		}
	}
	defer cleanup()
	var shmDir string
	if ppn > 0 {
		if shmDir, err = os.MkdirTemp("", "upcxx-run-shm-"); err != nil {
			fmt.Fprintln(os.Stderr, "upcxx-run:", err)
			os.Exit(1)
		}
		tmpDirs = append(tmpDirs, shmDir)
	}
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "upcxx-run: -trace:", err)
			os.Exit(1)
		}
	}
	// The debug endpoint runs on the launcher, aggregating child state:
	// every child opens a tiny loopback state server and drops its
	// address into a parent-owned directory; the HTTP handlers fan out.
	var debugDir string
	if debugAddr != "" {
		if debugDir, err = os.MkdirTemp("", "upcxx-run-debug-"); err != nil {
			fmt.Fprintln(os.Stderr, "upcxx-run:", err)
			os.Exit(1)
		}
		tmpDirs = append(tmpDirs, debugDir)
		bound, stop, serr := obs.ServeDebug(debugAddr, debugDir)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "upcxx-run: -debug-addr:", serr)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "upcxx-run: debug endpoint on http://%s/debug/\n", bound)
	}
	// With a gateway the wire job has one more rank than -n says, and the
	// rendezvous diagnostic labels it by role: a timeout reports
	// "missing: [gateway]" rather than a bare rank number.
	total := n
	if gateway != "" {
		total = n + 1
	}
	rdvErr := make(chan error, 1)
	go func() {
		rdvErr <- spmd.RendezvousWithNames(ln, total, func(rank int) string {
			if gateway != "" && rank == n {
				return "gateway"
			}
			return ""
		})
	}()

	children := make([]*exec.Cmd, 0, total)
	for i := 0; i < n; i++ {
		c := exec.Command(exe, os.Args[1:]...)
		c.Stdout = os.Stdout
		c.Stderr = os.Stderr
		c.Env = append(os.Environ(),
			envRank+"="+strconv.Itoa(i),
			envRanks+"="+strconv.Itoa(total),
			envRendezvous+"="+ln.Addr().String(),
		)
		if gateway != "" {
			// Own process group: a terminal ^C must not tear the compute
			// mesh down under the gateway mid-drain.
			c.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
		}
		if ppn > 0 {
			c.Env = append(c.Env,
				envPPN+"="+strconv.Itoa(ppn),
				envShmDir+"="+shmDir,
			)
		}
		if traceDir != "" {
			c.Env = append(c.Env, envTraceDir+"="+traceDir)
		}
		if debugDir != "" {
			c.Env = append(c.Env, envDebugDir+"="+debugDir)
		}
		if err := c.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "upcxx-run: spawning rank %d: %v\n", i, err)
			for _, prev := range children {
				prev.Process.Kill()
			}
			os.Exit(1)
		}
		children = append(children, c)
	}
	if gateway != "" {
		// The gateway binary lives beside the launcher (both come out of
		// `go build ./cmd/...`).
		gateExe := filepath.Join(filepath.Dir(exe), "upcxx-gate")
		c := exec.Command(gateExe,
			"-addr", gateway,
			"-scale", strconv.Itoa(scale),
			"-rendezvous-timeout", spmd.RendezvousTimeout.String(),
		)
		c.Stdout = os.Stdout
		c.Stderr = os.Stderr
		c.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
		c.Env = append(os.Environ(),
			envRank+"="+strconv.Itoa(n),
			envRanks+"="+strconv.Itoa(total),
			envRendezvous+"="+ln.Addr().String(),
		)
		if err := c.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "upcxx-run: spawning gateway (%s): %v\n", gateExe, err)
			for _, prev := range children {
				prev.Process.Kill()
			}
			os.Exit(1)
		}
		children = append(children, c)

		// The launcher is the job's pid: forward shutdown signals to the
		// gateway, whose drain releases the compute ranks in turn.
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
		defer signal.Stop(sigs)
		go func() {
			for range sigs {
				c.Process.Signal(syscall.SIGTERM)
			}
		}()
	}

	// exitCode propagates the first failing child's own status (a rank
	// that os.Exit(k)s surfaces as k here, not a generic 1), so scripts
	// above the launcher can tell an assertion failure from a crash.
	exitCode := 0
	for i, c := range children {
		label := fmt.Sprintf("rank %d", i)
		if gateway != "" && i == n {
			label = "gateway rank"
		}
		err := c.Wait()
		if err == nil {
			continue
		}
		// A rank the plan kills exits with ChaosExitCode from the armed
		// timer — a scripted death, not a job failure. (It exits 0
		// instead if the program finished before its death time.)
		var xerr *exec.ExitError
		if errors.As(err, &xerr) && xerr.ExitCode() == core.ChaosExitCode {
			if plan.KillsRank(i) {
				fmt.Fprintf(os.Stderr, "upcxx-run: %s killed by fault plan\n", label)
				continue
			}
			fmt.Fprintf(os.Stderr, "upcxx-run: %s exited with the chaos status %d but the plan does not kill it\n",
				label, core.ChaosExitCode)
		} else if errors.As(err, &xerr) {
			fmt.Fprintf(os.Stderr, "upcxx-run: %s exited with status %d\n", label, xerr.ExitCode())
		} else {
			fmt.Fprintf(os.Stderr, "upcxx-run: %s: %v\n", label, err)
		}
		if exitCode == 0 {
			if errors.As(err, &xerr) && xerr.ExitCode() > 0 {
				exitCode = xerr.ExitCode()
			} else {
				exitCode = 1
			}
		}
	}
	if err := <-rdvErr; err != nil && exitCode == 0 {
		fmt.Fprintln(os.Stderr, "upcxx-run:", err)
		exitCode = 1
	}
	// Merge whatever the children managed to dump even on failure — a
	// partial trace of a wedged or crashed job is exactly when you want
	// the timeline.
	if traceDir != "" {
		mergeTrace(traceDir)
	}
	if exitCode != 0 {
		cleanup() // os.Exit skips the deferred cleanup
		os.Exit(exitCode)
	}
}

// runChild is one rank of the wire job (re-executed by runTCP; the
// -chaos flag rides along in os.Args, so every child parses the same
// plan the parent did).
func runChild(prog spmd.Prog, scale int, rankStr string, plan *fault.Plan) {
	rank, err := strconv.Atoi(rankStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "upcxx-run: bad %s=%q\n", envRank, rankStr)
		os.Exit(1)
	}
	n, err := strconv.Atoi(os.Getenv(envRanks))
	if err != nil || n < 1 {
		fmt.Fprintf(os.Stderr, "upcxx-run: bad %s=%q\n", envRanks, os.Getenv(envRanks))
		os.Exit(1)
	}
	rdv := os.Getenv(envRendezvous)
	obs.InitHealth(n)
	traceDir := os.Getenv(envTraceDir)
	if traceDir != "" {
		obs.SetTracing(true)
		defer obs.InstallTraceSignal(traceDir, rank)()
	}
	if debugDir := os.Getenv(envDebugDir); debugDir != "" {
		if stop, serr := obs.StartStateServer(debugDir, rank); serr != nil {
			fmt.Fprintf(os.Stderr, "upcxx-run: rank %d: state server: %v\n", rank, serr)
		} else {
			defer stop()
		}
	}
	cfg := core.Config{
		Resilient: prog.Resilient || plan != nil,
		Fault:     plan,
		// A real process backs this rank, so a kill rule may genuinely
		// end it (core.ChaosArm arms the exit timer).
		ChaosProcessExit: true,
	}
	rep := reportRank(n, plan)
	var sum uint64
	body := func(me *core.Rank) {
		s := prog.Run(me, scale)
		if me.ID() == rep {
			sum = s
		}
	}
	if shmDir := os.Getenv(envShmDir); shmDir != "" {
		// Hierarchical child: co-located ranks share mmap'd segments.
		ppn, perr := strconv.Atoi(os.Getenv(envPPN))
		if perr != nil || ppn < 1 {
			fmt.Fprintf(os.Stderr, "upcxx-run: bad %s=%q\n", envPPN, os.Getenv(envPPN))
			os.Exit(1)
		}
		_, err = spmd.RunHierChild(rdv, rank, n, ppn, prog.SegBytes(n, scale), shmDir, cfg, body)
	} else {
		_, err = spmd.RunWireChild(rdv, rank, n, prog.SegBytes(n, scale), cfg, body)
	}
	if traceDir != "" {
		if derr := obs.DumpTraceFile(traceDir, rank); derr != nil {
			fmt.Fprintf(os.Stderr, "upcxx-run: rank %d: trace dump: %v\n", rank, derr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "upcxx-run: rank %d: %v\n", rank, err)
		os.Exit(1)
	}
	if rank == rep {
		report(prog, n, scale, sum)
	}
}
