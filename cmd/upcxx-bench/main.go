// Command upcxx-bench regenerates the tables and figures of the paper's
// evaluation section (§V). Each experiment runs the real benchmark code
// over the virtual-time machine model at the paper's rank counts and
// emits the corresponding series — as aligned text, markdown, or a
// machine-readable JSON report (the BENCH_*.json perf-trajectory
// artifact).
//
// Usage:
//
//	upcxx-bench -list                            # the experiment registry
//	upcxx-bench -exp all                         # every table and figure (full scale)
//	upcxx-bench -exp fig4 -quick                 # one experiment, reduced sweep
//	upcxx-bench -exp fig8 -markdown              # emit a markdown table
//	upcxx-bench -exp all -quick -json -out BENCH_upcxx.json
//	upcxx-bench -quick -diff BENCH_upcxx.json    # regression gate vs the baseline
//
// With -diff the sweep is regenerated and every headline metric point is
// compared against the given baseline artifact within -tol relative
// drift (experiments may widen their own tolerance via DiffTolerance —
// the wall-clock dhtbench does); any violation (or vanished point)
// exits non-zero. This is the CI bench-regression gate.
//
// Experiments: fig4, tableiv (alias tab4), fig5, fig6, fig7, fig8,
// dhtbench (alias dht), collbench (alias coll), rpcbench (alias rpc),
// futbench (alias fut), loadcurve (alias load), all — run -list for
// descriptions.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"upcxx/internal/bench/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: "+strings.Join(harness.Names(), ", "))
	list := flag.Bool("list", false, "list the experiment registry (ids, aliases, titles) and exit")
	quick := flag.Bool("quick", false, "reduced sweeps for fast runs")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	jsonOut := flag.Bool("json", false, "emit the full report as JSON")
	out := flag.String("out", "", "write output to this file instead of stdout")
	diff := flag.String("diff", "", "regenerate the sweep and diff headline metrics against this baseline JSON artifact")
	tol := flag.Float64("tol", harness.DefaultTolerance, "relative drift tolerance for -diff")
	flag.Parse()

	if *list {
		listExperiments(os.Stdout)
		return
	}

	if *markdown && *jsonOut {
		fmt.Fprintln(os.Stderr, "-markdown and -json are mutually exclusive")
		os.Exit(2)
	}
	format := "text"
	if *markdown {
		format = "markdown"
	}
	if *jsonOut {
		format = "json"
	}
	renderer, err := harness.RendererFor(format)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var exps []harness.Experiment
	if strings.EqualFold(*exp, "all") {
		exps = harness.Experiments()
	} else {
		e, ok := harness.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want %s)\n",
				*exp, strings.Join(harness.Names(), ", "))
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}

	o := harness.Options{Quick: *quick}

	if *diff != "" {
		baseline, err := harness.LoadReport(*diff)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// Compare only the experiments being regenerated, so
		// `-exp fig4 -diff` checks fig4 without flagging the rest of the
		// baseline as missing.
		selected := map[string]bool{}
		for _, e := range exps {
			selected[e.ID] = true
		}
		var kept []harness.Result
		for _, r := range baseline.Results {
			if selected[r.ID] {
				kept = append(kept, r)
			}
		}
		baseline.Results = kept
		var results []harness.Result
		for _, e := range exps {
			results = append(results, e.Run(o))
		}
		entries := harness.DiffReports(baseline, harness.NewReport(o, results), *tol)
		if len(entries) == 0 {
			fmt.Fprintf(os.Stderr, "no comparable points between %s and the regenerated sweep\n", *diff)
			os.Exit(1)
		}
		failures := harness.RenderDiff(os.Stdout, entries)
		if failures > 0 {
			// Per-point tolerances vary (experiments may widen the
			// global -tol); the table above names the gate each
			// failing point violated.
			fmt.Fprintf(os.Stderr, "upcxx-bench: %d of %d points regressed beyond tolerance vs %s\n",
				failures, len(entries), *diff)
			os.Exit(1)
		}
		fmt.Printf("all %d points within tolerance of %s\n", len(entries), *diff)
		return
	}

	// Text/markdown on stdout stream experiment by experiment (the full
	// sweeps run minutes); JSON and file output collect the whole report.
	stream := *out == "" && format != "json"
	var results []harness.Result
	for _, e := range exps {
		r := e.Run(o)
		if stream {
			if err := renderer.Render(os.Stdout, harness.Report{Results: []harness.Result{r}}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		results = append(results, r)
	}
	if stream {
		return
	}

	w := io.Writer(os.Stdout)
	var f *os.File
	if *out != "" {
		var err error
		if f, err = os.Create(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w = f
	}
	err = renderer.Render(w, harness.NewReport(o, results))
	if f != nil {
		// Surface close-time write errors: a truncated artifact must
		// not exit 0.
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// listExperiments prints the experiment registry, one line per
// experiment, mirroring upcxx-run's program-registry printout.
func listExperiments(w io.Writer) {
	for _, e := range harness.Experiments() {
		name := e.ID
		if len(e.Aliases) > 0 {
			name += " (" + strings.Join(e.Aliases, ", ") + ")"
		}
		fmt.Fprintf(w, "%-22s [%s] %s\n", name, e.PaperRef, e.Title)
	}
}
