// Command upcxx-bench regenerates the tables and figures of the paper's
// evaluation section (§V). Each experiment runs the real benchmark code
// over the virtual-time machine model at the paper's rank counts and
// prints the corresponding series.
//
// Usage:
//
//	upcxx-bench -exp all            # every table and figure (full scale)
//	upcxx-bench -exp fig4 -quick    # one experiment, reduced sweep
//	upcxx-bench -exp fig8 -markdown # emit a markdown table
//
// Experiments: fig4, tab4, fig5, fig6, fig7, fig8, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"upcxx/internal/bench/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig4, tab4, fig5, fig6, fig7, fig8, all")
	quick := flag.Bool("quick", false, "reduced sweeps for fast runs")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	flag.Parse()

	o := harness.Options{Quick: *quick}
	emit := func(t *harness.Table) {
		if *markdown {
			t.Markdown(os.Stdout)
		} else {
			t.Fprint(os.Stdout)
		}
	}
	runs := map[string][]func(harness.Options) *harness.Table{
		"fig4":    {harness.Fig4},
		"tab4":    {harness.TableIV},
		"tableiv": {harness.TableIV},
		"fig5":    {harness.Fig5},
		"fig6":    {harness.Fig6},
		"fig7":    {harness.Fig7},
		"fig8":    {harness.Fig8},
		"all":     {harness.Fig4, harness.TableIV, harness.Fig5, harness.Fig6, harness.Fig7, harness.Fig8},
	}
	fns, ok := runs[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	// Experiments stream as they complete: the full sweeps run minutes.
	for _, fn := range fns {
		emit(fn(o))
	}
}
