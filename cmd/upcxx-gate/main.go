// Command upcxx-gate is the HTTP/JSON front door of a gateway job: it
// joins a running compute mesh as one extra client rank and translates
// REST traffic into aggregated DHT operations.
//
//	PUT  /kv/{key}        store one value (bare decimal or {"value":N})
//	GET  /kv/{key}        read one key (404 when absent)
//	POST /kv/batch/put    {"items":[{"key":K,"value":N},...]}
//	POST /kv/batch/get    {"keys":[K,...]}
//	GET  /healthz         liveness (always 200 while the process runs)
//	GET  /readyz          readiness (200 only after rendezvous + DHT attach)
//	GET  /debug/metrics   runtime + service counters (Prometheus text)
//
// The usual way to start one is through the launcher, which assembles
// the whole job:
//
//	upcxx-run -n 4 -backend tcp -gateway 127.0.0.1:8080 gateserve
//
// upcxx-run spawns the n compute ranks and this binary as rank n of
// the same wire job, all meeting at one rendezvous. The binary can
// also be started by hand against a hand-built mesh by setting the
// same environment (UPCXX_RUN_RANK/RANKS/RENDEZVOUS).
//
// Shutdown is a graceful drain, triggered by SIGTERM or SIGINT: stop
// admitting (readyz goes 503, requests get 503 + Retry-After), let the
// in-flight requests finish, flush the aggregation plane, broadcast
// the release to the compute ranks, and leave the mesh through the
// collective checksum — every acknowledged write is on the wire and
// replicated before the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"upcxx/internal/core"
	"upcxx/internal/obs"
	"upcxx/internal/spmd"
	"upcxx/internal/svc"
)

// The launcher hands the gateway its mesh identity through the same
// environment the compute children use, plus the gate-specific knobs.
const (
	envRank       = "UPCXX_RUN_RANK"
	envRanks      = "UPCXX_RUN_RANKS"
	envRendezvous = "UPCXX_RUN_RENDEZVOUS"
	envGateAddr   = "UPCXX_GATE_ADDR"
	envGateScale  = "UPCXX_GATE_SCALE"
)

func main() {
	addr := flag.String("addr", envOr(envGateAddr, "127.0.0.1:8080"), "HTTP listen address")
	scale := flag.Int("scale", envIntOr(envGateScale, 0), "distinct keys the job is provisioned for (0 = default)")
	maxInFlight := flag.Int("max-in-flight", 0, "admitted-request bound; one more gets 429 (0 = default 1024)")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request deadline, expiry maps to 504 (0 = default 5s)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on the SIGTERM drain of in-flight requests")
	rdvTimeout := flag.Duration("rendezvous-timeout", spmd.RendezvousTimeout, "deadline for the mesh address rendezvous")
	verifyKeys := flag.Bool("verify-keys", false, "collision-check string-key hashing (costs one map entry per distinct key)")
	verbose := flag.Int("v", 0, "runtime log verbosity, 0 = silent")
	flag.Parse()

	if *verbose > 0 {
		obs.SetVerbosity(*verbose)
	}
	spmd.RendezvousTimeout = *rdvTimeout

	rank, err := strconv.Atoi(os.Getenv(envRank))
	if err != nil {
		fatalf("bad or missing %s=%q (start through upcxx-run -gateway, or set the mesh identity by hand)",
			envRank, os.Getenv(envRank))
	}
	ranks, err := strconv.Atoi(os.Getenv(envRanks))
	if err != nil || ranks < 2 || rank < 0 || rank >= ranks {
		fatalf("bad %s=%q for rank %d (a gateway job needs at least one compute rank)",
			envRanks, os.Getenv(envRanks), rank)
	}
	rdv := os.Getenv(envRendezvous)
	if rdv == "" {
		fatalf("missing %s (the launcher's rendezvous address)", envRendezvous)
	}

	st := svc.NewDHTStore(svc.StoreConfig{VerifyKeys: *verifyKeys})
	app := svc.New(st, svc.Config{MaxInFlight: *maxInFlight, RequestTimeout: *reqTimeout})
	// The application-layer counters ride the same /debug/metrics the
	// runtime serves (GatewayMain adds the store's own).
	defer obs.Reg().AddSource(rank, func() map[string]int64 {
		out := make(map[string]int64)
		for k, v := range app.Counters() {
			out[k] = int64(v)
		}
		return out
	})()

	// The HTTP side comes up before the mesh side: the listener binds
	// first so /healthz and a 503 /readyz answer while rendezvous runs,
	// which is what makes readiness observable as a state change.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen %s: %v", *addr, err)
	}
	srv := &http.Server{Handler: svc.Handler(app)}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "upcxx-gate: serving http://%s/kv/ (rank %d of %d, rendezvous %s)\n",
		ln.Addr(), rank, ranks, rdv)

	// SIGTERM/SIGINT begins the drain: refuse new work, finish what is
	// in flight, then drain the store queue — Serve's return on the
	// SPMD goroutine carries the shutdown into the mesh departure.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "upcxx-gate: %v: draining (in-flight bound %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := app.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "upcxx-gate: drain: %v (departing anyway)\n", err)
		}
		srv.Shutdown(ctx)
		st.Stop()
	}()

	// The main goroutine is the SPMD rank: rendezvous, connect, pump
	// the op queue until the drain, then leave through the collective.
	meshFatal := func(err error) {
		// A rendezvous expiry on a heterogeneous job must say which side
		// was missing; the parent's diagnostic names the gateway rank, so
		// here the useful hint is the other half.
		if strings.Contains(err.Error(), "rendezvous") {
			fatalf("%v\n  (is the compute mesh up? upcxx-run -gateway starts both sides)", err)
		}
		fatalf("%v", err)
	}
	var sum uint64
	_, err = spmd.RunWireChild(rdv, rank, ranks, svc.GateSegBytes(ranks, *scale),
		core.Config{Resilient: true}, func(me *core.Rank) {
			sum = svc.GatewayMain(me, st, *scale)
		})
	if err != nil {
		meshFatal(err)
	}
	srv.Close()
	if err := <-httpErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "upcxx-gate: http: %v\n", err)
	}
	fmt.Fprintf(os.Stderr, "upcxx-gate: departed cleanly, checksum=%016x\n", sum)
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func envIntOr(key string, def int) int {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "upcxx-gate: "+format+"\n", args...)
	os.Exit(1)
}
