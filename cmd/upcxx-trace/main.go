// Command upcxx-trace validates and summarizes a Chrome trace_event
// JSON file produced by upcxx-run -trace (a merged trace.json or a
// single per-rank dump):
//
//	upcxx-trace trace-out/trace.json
//
// It checks that the file is well-formed trace JSON (parseable, known
// phases, non-negative timestamps, per-thread monotone ordering) and
// prints one summary line:
//
//	trace-out/trace.json: 1234 events, 4 tids, cats=[agg core wire]
//
// A malformed trace exits nonzero with the first violation, which is
// what the CI observability smoke leg asserts.
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"upcxx/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: upcxx-trace <trace.json>")
		os.Exit(2)
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upcxx-trace:", err)
		os.Exit(1)
	}
	sum, err := obs.ValidateTrace(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "upcxx-trace: %s: %v\n", path, err)
		os.Exit(1)
	}
	cats := make([]string, 0, len(sum.Categories))
	for c := range sum.Categories {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	fmt.Printf("%s: %d events, %d tids, cats=[%s]\n",
		path, sum.Events, len(sum.Tids), strings.Join(cats, " "))
}
